#include <algorithm>
#include <string>
#include <tuple>

#include "apps/pattern.h"
#include "apps/seq/seq_matching.h"
#include "apps/sim.h"
#include "apps/subiso.h"
#include "core/engine.h"
#include "graph/generators.h"
#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace grape {
namespace {

Graph LabeledData(uint32_t scale, uint32_t labels, uint64_t seed) {
  LabeledGraphOptions opts;
  opts.scale = scale;
  opts.edge_factor = 6;
  opts.num_vertex_labels = labels;
  opts.seed = seed;
  auto g = GenerateLabeledGraph(opts);
  EXPECT_TRUE(g.ok());
  return std::move(g).value();
}

Pattern MakePattern(const std::string& name) {
  Result<Pattern> p = Status::Internal("unset");
  if (name == "edge") {
    p = Pattern::Create({0, 1}, {{0, 1, 0}});
  } else if (name == "path3") {
    p = Pattern::Create({0, 1, 2}, {{0, 1, 0}, {1, 2, 0}});
  } else if (name == "triangle") {
    p = Pattern::Create({0, 1, 2}, {{0, 1, 0}, {1, 2, 0}, {2, 0, 0}});
  } else if (name == "diamond") {
    p = Pattern::Create({0, 1, 1, 2},
                        {{0, 1, 0}, {0, 2, 0}, {1, 3, 0}, {2, 3, 0}});
  } else if (name == "star") {
    p = Pattern::Create({0, 1, 2, 3}, {{0, 1, 0}, {0, 2, 0}, {0, 3, 0}});
  }
  EXPECT_TRUE(p.ok()) << name;
  return std::move(p).value();
}

TEST(PatternTest, CreateValidates) {
  EXPECT_FALSE(Pattern::Create({}, {}).ok());
  EXPECT_FALSE(Pattern::Create({0, 1}, {{0, 5, 0}}).ok());
  EXPECT_FALSE(Pattern::Create(std::vector<Label>(65, 0), {}).ok());
  auto p = Pattern::Create({1, 2}, {{0, 1, 3}});
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->num_vertices(), 2u);
  EXPECT_EQ(p->Out(0).size(), 1u);
  EXPECT_EQ(p->In(1).size(), 1u);
  EXPECT_TRUE(p->IsConnected());
}

TEST(PatternTest, DisconnectedDetected) {
  auto p = Pattern::Create({0, 1, 2}, {{0, 1, 0}});
  ASSERT_TRUE(p.ok());
  EXPECT_FALSE(p->IsConnected());
}

TEST(MatchingOrderTest, EveryVertexHasEarlierNeighbor) {
  for (const std::string name :
       {"edge", "path3", "triangle", "diamond", "star"}) {
    Pattern p = MakePattern(name);
    std::vector<uint32_t> order = BuildMatchingOrder(p);
    ASSERT_EQ(order.size(), p.num_vertices());
    std::vector<bool> placed(p.num_vertices(), false);
    placed[order[0]] = true;
    for (size_t d = 1; d < order.size(); ++d) {
      uint32_t u = order[d];
      bool connected = false;
      for (const auto& [v, l] : p.Out(u)) connected |= placed[v];
      for (const auto& [v, l] : p.In(u)) connected |= placed[v];
      EXPECT_TRUE(connected) << name << " position " << d;
      placed[u] = true;
    }
  }
}

using MatchParam = std::tuple<std::string, std::string, FragmentId>;

class SimMatrixTest : public ::testing::TestWithParam<MatchParam> {};

TEST_P(SimMatrixTest, MatchesSequentialSimulation) {
  const auto& [pattern_name, strategy, nfrag] = GetParam();
  Graph g = LabeledData(8, 3, 401);
  Pattern pattern = MakePattern(pattern_name);
  auto expected = SeqSimulation(g, pattern);

  FragmentedGraph fg = testing::MakeFragments(g, strategy, nfrag);
  GrapeEngine<SimApp> engine(fg, SimApp{});
  auto out = engine.Run(SimQuery{pattern});
  ASSERT_TRUE(out.ok()) << out.status();
  ASSERT_EQ(out->sim.size(), pattern.num_vertices());
  for (uint32_t u = 0; u < pattern.num_vertices(); ++u) {
    EXPECT_EQ(out->sim[u], expected[u]) << "pattern vertex " << u;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, SimMatrixTest,
    ::testing::Combine(::testing::Values("edge", "path3", "triangle",
                                         "diamond"),
                       ::testing::Values("hash", "metis"),
                       ::testing::Values(FragmentId{1}, FragmentId{4},
                                         FragmentId{7})),
    [](const auto& info) {
      return std::get<0>(info.param) + "_" + std::get<1>(info.param) + "_" +
             std::to_string(std::get<2>(info.param));
    });

TEST(SimTest, MonotonicallyShrinks) {
  Graph g = LabeledData(8, 2, 409);
  FragmentedGraph fg = testing::MakeFragments(g, "hash", 4);
  EngineOptions opts;
  opts.check_monotonicity = true;
  GrapeEngine<SimApp> engine(fg, SimApp{}, opts);
  auto out = engine.Run(SimQuery{MakePattern("path3")});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(engine.metrics().monotonicity_violations, 0u);
}

TEST(SimTest, NoMatchesForAbsentLabel) {
  Graph g = LabeledData(7, 2, 419);  // labels in {0,1}
  auto pattern = Pattern::Create({9, 9}, {{0, 1, 0}});
  ASSERT_TRUE(pattern.ok());
  FragmentedGraph fg = testing::MakeFragments(g, "hash", 3);
  GrapeEngine<SimApp> engine(fg, SimApp{});
  auto out = engine.Run(SimQuery{*pattern});
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->sim[0].empty());
  EXPECT_TRUE(out->sim[1].empty());
}

class SubIsoMatrixTest : public ::testing::TestWithParam<MatchParam> {};

TEST_P(SubIsoMatrixTest, MatchesSequentialEnumeration) {
  const auto& [pattern_name, strategy, nfrag] = GetParam();
  Graph g = LabeledData(7, 4, 421);  // small + many labels: tractable
  Pattern pattern = MakePattern(pattern_name);
  auto expected = SeqSubgraphIsomorphism(g, pattern);

  FragmentedGraph fg = testing::MakeFragments(g, strategy, nfrag);
  GrapeEngine<SubIsoApp> engine(fg, SubIsoApp{});
  auto out = engine.Run(SubIsoQuery{pattern, 0});
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_EQ(out->embeddings.size(), expected.size());
  EXPECT_EQ(out->embeddings, expected);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, SubIsoMatrixTest,
    ::testing::Combine(::testing::Values("edge", "path3", "triangle",
                                         "diamond", "star"),
                       ::testing::Values("hash", "metis"),
                       ::testing::Values(FragmentId{1}, FragmentId{4},
                                         FragmentId{7})),
    [](const auto& info) {
      return std::get<0>(info.param) + "_" + std::get<1>(info.param) + "_" +
             std::to_string(std::get<2>(info.param));
    });

TEST(SubIsoTest, InjectivityEnforced) {
  // Triangle data graph; pattern = 3-path with identical labels. Every
  // embedding must use 3 distinct vertices.
  GraphBuilder builder(true);
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 2);
  builder.AddEdge(2, 0);
  builder.SetVertexLabel(0, 0);
  builder.SetVertexLabel(1, 0);
  builder.SetVertexLabel(2, 0);
  auto g = std::move(builder).Build();
  ASSERT_TRUE(g.ok());
  auto pattern = Pattern::Create({0, 0, 0}, {{0, 1, 0}, {1, 2, 0}});
  ASSERT_TRUE(pattern.ok());

  FragmentedGraph fg = testing::MakeFragments(*g, "hash", 3);
  GrapeEngine<SubIsoApp> engine(fg, SubIsoApp{});
  auto out = engine.Run(SubIsoQuery{*pattern, 0});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->embeddings.size(), 3u);  // 0-1-2, 1-2-0, 2-0-1
  for (const Embedding& e : out->embeddings) {
    EXPECT_NE(e[0], e[1]);
    EXPECT_NE(e[1], e[2]);
    EXPECT_NE(e[0], e[2]);
  }
}

TEST(SubIsoTest, EdgeLabelsRespected) {
  GraphBuilder builder(true);
  builder.AddEdge(0, 1, 1.0, /*label=*/5);
  builder.AddEdge(0, 2, 1.0, /*label=*/6);
  builder.SetVertexLabel(0, 1);
  builder.SetVertexLabel(1, 2);
  builder.SetVertexLabel(2, 2);
  auto g = std::move(builder).Build();
  ASSERT_TRUE(g.ok());
  auto pattern = Pattern::Create({1, 2}, {{0, 1, 5}});
  ASSERT_TRUE(pattern.ok());
  FragmentedGraph fg = testing::MakeFragments(*g, "hash", 2);
  GrapeEngine<SubIsoApp> engine(fg, SubIsoApp{});
  auto out = engine.Run(SubIsoQuery{*pattern, 0});
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->embeddings.size(), 1u);
  EXPECT_EQ(out->embeddings[0][1], 1u);  // only the label-5 edge matches
}

TEST(SubIsoTest, SingleVertexPattern) {
  Graph g = LabeledData(6, 3, 431);
  auto pattern = Pattern::Create({1}, {});
  ASSERT_TRUE(pattern.ok());
  FragmentedGraph fg = testing::MakeFragments(g, "hash", 4);
  GrapeEngine<SubIsoApp> engine(fg, SubIsoApp{});
  auto out = engine.Run(SubIsoQuery{*pattern, 0});
  ASSERT_TRUE(out.ok());
  size_t expected = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (g.vertex_label(v) == 1) ++expected;
  }
  EXPECT_EQ(out->embeddings.size(), expected);
}

TEST(SubIsoTest, SequentialEnumeratorOnKnownGraph) {
  // Square 0->1->2->3->0: exactly 4 directed 3-paths, 0 triangles.
  GraphBuilder builder(true);
  for (VertexId v = 0; v < 4; ++v) {
    builder.AddEdge(v, (v + 1) % 4);
    builder.SetVertexLabel(v, 0);
  }
  auto g = std::move(builder).Build();
  ASSERT_TRUE(g.ok());
  auto path3 = Pattern::Create({0, 0, 0}, {{0, 1, 0}, {1, 2, 0}});
  auto tri = Pattern::Create({0, 0, 0}, {{0, 1, 0}, {1, 2, 0}, {2, 0, 0}});
  ASSERT_TRUE(path3.ok());
  ASSERT_TRUE(tri.ok());
  EXPECT_EQ(SeqSubgraphIsomorphism(*g, *path3).size(), 4u);
  EXPECT_TRUE(SeqSubgraphIsomorphism(*g, *tri).empty());
}

}  // namespace
}  // namespace grape
