// Serving-layer tests (src/serve): the golden guarantee — batched answers
// are bit-identical to one-at-a-time answers, on every transport — plus
// concurrent clients, per-epoch cache invalidation across reloads, the
// bounded client decoder's rejection path, and shared-secret rank
// admission on the tcp rendezvous.

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "apps/cc.h"
#include "apps/ms_sssp.h"
#include "apps/register_apps.h"
#include "apps/sssp.h"
#include "core/engine.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/mutation.h"
#include "gtest/gtest.h"
#include "rt/tcp_transport.h"
#include "rt/transport.h"
#include "serve/client.h"
#include "serve/serve.h"
#include "tests/test_util.h"

namespace grape {
namespace {

using testing::MakeFragments;

/// Bitwise equality — exactly what "bit-identical" promises; an
/// ULP-close-but-different double must fail this.
template <typename T>
bool BitEq(const std::vector<T>& a, const std::vector<T>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(T)) == 0);
}

/// A 12x12 weighted road grid: connected, large diameter, so point
/// queries run enough supersteps for fusion and ordering to matter.
Graph ServingGraph() {
  auto g = GenerateGridRoad(12, 12, /*seed=*/5);
  EXPECT_TRUE(g.ok()) << g.status();
  return std::move(g).value();
}

const std::vector<VertexId> kSources = {0, 7, 33, 95, 143};

// ---------------------------------------------------------------------------
// Engine-level golden: every lane of a fused multi-source wave carries
// the same bits as a standalone single-source SsspApp run.

TEST(ServingTest, MultiSourceLanesMatchSingleSourceBits) {
  RegisterBuiltinWorkerApps();
  Graph graph = ServingGraph();
  FragmentedGraph fg = MakeFragments(graph, "hash", 3);

  auto world = MakeTransport("inproc", 4);
  ASSERT_TRUE(world.ok()) << world.status();
  EngineOptions eo;
  eo.transport = world->get();
  eo.remote_app = "ms_sssp";
  GrapeEngine<MsSsspApp> ms(fg, MsSsspApp{}, eo);
  MsSsspQuery query;
  query.sources = kSources;
  auto wave = ms.SessionRun(query);
  ASSERT_TRUE(wave.ok()) << wave.status();
  ms.EndSession();

  ASSERT_EQ(wave->dist.size(), kSources.size());
  for (size_t k = 0; k < kSources.size(); ++k) {
    GrapeEngine<SsspApp> ref(fg, SsspApp{}, EngineOptions{});
    auto single = ref.Run(SsspQuery{kSources[k]});
    ASSERT_TRUE(single.ok()) << single.status();
    EXPECT_TRUE(BitEq(wave->dist[k], single->dist)) << "lane " << k;
  }
}

// ---------------------------------------------------------------------------
// End-to-end golden on every transport: a batching server under
// concurrent clients answers bit-identically to a non-batching server
// under a sequential client — and both match the engine run directly.

class ServingGoldenTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ServingGoldenTest, BatchedEqualsSequential) {
  RegisterBuiltinWorkerApps();
  Graph graph = ServingGraph();

  auto world = MakeTransport(GetParam(), 4);
  ASSERT_TRUE(world.ok()) << world.status();

  ServeOptions base;
  base.transport = world->get();
  base.num_fragments = 3;
  base.load_coordinator = [&graph]() -> Result<FragmentedGraph> {
    auto partitioner = MakePartitioner("hash");
    GRAPE_RETURN_NOT_OK(partitioner.status());
    GRAPE_ASSIGN_OR_RETURN(auto assignment,
                           (*partitioner)->Partition(graph, 3));
    return FragmentBuilder::Build(graph, assignment, 3);
  };

  // Pass 1 — batching disabled, one client, one query at a time.
  std::vector<std::vector<double>> seq_dist;
  std::vector<std::vector<uint32_t>> seq_depth;
  std::vector<VertexId> seq_cc;
  {
    ServeOptions opts = base;
    opts.batch_window_ms = 0;
    ServeServer server(opts);
    ASSERT_OK(server.Start());
    ASSERT_OK_AND_ASSIGN(ServeClient client,
                         ServeClient::Connect(server.port()));
    for (VertexId s : kSources) {
      ASSERT_OK_AND_ASSIGN(auto d, client.Sssp(s));
      ASSERT_OK_AND_ASSIGN(auto b, client.Bfs(s));
      seq_dist.push_back(std::move(d));
      seq_depth.push_back(std::move(b));
    }
    ASSERT_OK_AND_ASSIGN(seq_cc, client.ComponentLabels());
    const ServeStats stats = server.stats();
    EXPECT_EQ(stats.fused_queries, 0u);  // window closed: no fusion
    EXPECT_EQ(stats.errors, 0u);
    server.Shutdown();
  }

  // The sequential pass must itself match the engine, not just later
  // passes: self-consistent-but-wrong would otherwise slip through.
  {
    FragmentedGraph fg = MakeFragments(graph, "hash", 3);
    for (size_t k = 0; k < kSources.size(); ++k) {
      GrapeEngine<SsspApp> ref(fg, SsspApp{}, EngineOptions{});
      auto single = ref.Run(SsspQuery{kSources[k]});
      ASSERT_TRUE(single.ok()) << single.status();
      EXPECT_TRUE(BitEq(seq_dist[k], single->dist)) << "source " << kSources[k];
    }
  }

  // Pass 2 — wide-open batching window, one client thread per source,
  // all firing at once so the admission loop actually fuses.
  {
    ServeOptions opts = base;
    opts.batch_window_ms = 100;
    opts.max_batch = 16;
    ServeServer server(opts);
    ASSERT_OK(server.Start());
    std::atomic<uint32_t> mismatches{0};
    std::vector<std::thread> threads;
    for (size_t k = 0; k < kSources.size(); ++k) {
      threads.emplace_back([&, k] {
        auto client = ServeClient::Connect(server.port());
        if (!client.ok()) {
          mismatches.fetch_add(1);
          return;
        }
        auto d = client->Sssp(kSources[k]);
        if (!d.ok() || !BitEq(*d, seq_dist[k])) mismatches.fetch_add(1);
        auto b = client->Bfs(kSources[k]);
        if (!b.ok() || !BitEq(*b, seq_depth[k])) mismatches.fetch_add(1);
        auto cc = client->ComponentLabels();
        if (!cc.ok() || !BitEq(*cc, seq_cc)) mismatches.fetch_add(1);
      });
    }
    for (auto& t : threads) t.join();
    EXPECT_EQ(mismatches.load(), 0u);
    // The concurrent CC reads computed the epoch cache (possibly all in
    // one fused batch, which counts no hits); a read after the dust
    // settles must be a pure cache hit.
    ASSERT_OK_AND_ASSIGN(ServeClient late, ServeClient::Connect(server.port()));
    ASSERT_OK_AND_ASSIGN(auto late_cc, late.ComponentLabels());
    EXPECT_TRUE(BitEq(late_cc, seq_cc));
    const ServeStats stats = server.stats();
    EXPECT_GT(stats.fused_queries, 0u)
        << "concurrent same-class queries never fused";
    EXPECT_GT(stats.cache_hits, 0u)
        << "a repeated CC read never hit the epoch cache";
    EXPECT_EQ(stats.errors, 0u);
    server.Shutdown();
  }
}

INSTANTIATE_TEST_SUITE_P(Transports, ServingGoldenTest,
                         ::testing::Values("inproc", "socket", "tcp"));

// ---------------------------------------------------------------------------
// Reload: a new epoch re-runs the loader, invalidates the CC/PageRank
// caches, and serves the new graph's answers.

TEST(ServingTest, ReloadInvalidatesCachesAndBumpsEpoch) {
  RegisterBuiltinWorkerApps();
  // Epoch 1: one 12-vertex path (single component). Epoch 2: the same
  // vertices as two disjoint halves — CC labels must change shape-free.
  auto world = MakeTransport("inproc", 4);
  ASSERT_TRUE(world.ok()) << world.status();

  std::atomic<int> loads{0};
  ServeOptions opts;
  opts.transport = world->get();
  opts.num_fragments = 3;
  opts.batch_window_ms = 0;
  opts.load_coordinator = [&loads]() -> Result<FragmentedGraph> {
    const int epoch = ++loads;
    GraphBuilder builder(/*directed=*/false);
    for (VertexId v = 0; v + 1 < 12; ++v) {
      if (epoch > 1 && v == 5) continue;  // sever the middle edge
      builder.AddEdge(v, v + 1, 1.0);
    }
    GRAPE_ASSIGN_OR_RETURN(Graph g, std::move(builder).Build());
    auto partitioner = MakePartitioner("hash");
    GRAPE_RETURN_NOT_OK(partitioner.status());
    GRAPE_ASSIGN_OR_RETURN(auto assignment, (*partitioner)->Partition(g, 3));
    return FragmentBuilder::Build(g, assignment, 3);
  };
  ServeServer server(opts);
  ASSERT_OK(server.Start());
  EXPECT_EQ(server.epoch(), 1u);

  ASSERT_OK_AND_ASSIGN(ServeClient client, ServeClient::Connect(server.port()));
  ASSERT_OK_AND_ASSIGN(auto cc1, client.ComponentLabels());
  ASSERT_OK_AND_ASSIGN(auto cc1_again, client.ComponentLabels());
  EXPECT_TRUE(BitEq(cc1, cc1_again));
  EXPECT_GE(server.stats().cache_hits, 1u);
  ASSERT_OK_AND_ASSIGN(auto pr1, client.PageRank());

  ASSERT_OK_AND_ASSIGN(uint64_t epoch, client.Reload());
  EXPECT_EQ(epoch, 2u);
  EXPECT_EQ(server.epoch(), 2u);
  EXPECT_EQ(server.stats().reloads, 1u);

  ASSERT_OK_AND_ASSIGN(auto cc2, client.ComponentLabels());
  ASSERT_OK_AND_ASSIGN(auto pr2, client.PageRank());
  EXPECT_FALSE(BitEq(cc1, cc2)) << "reload served the stale CC cache";
  EXPECT_FALSE(BitEq(pr1, pr2)) << "reload served the stale PageRank cache";
  // The severed graph has two components; the path had one.
  EXPECT_EQ(cc2.front(), cc2[5]);
  EXPECT_NE(cc2.front(), cc2[6]);
  EXPECT_EQ(cc1.front(), cc1[6]);

  // Point queries see the new epoch too (vertex 6 now unreachable from 0).
  ASSERT_OK_AND_ASSIGN(auto dist, client.Sssp(0));
  EXPECT_EQ(dist[6], kInfDistance);
  server.Shutdown();
}

// ---------------------------------------------------------------------------
// Streaming updates through the serve protocol: a mutation batch lands in
// the resident graph (no reload, no epoch bump), later answers are
// bit-identical to a from-scratch recompute of G ⊕ M, an insert-only batch
// carried by the live CC session refreshes the CC cache by bounded delta,
// and a deletion batch invalidates caches instead of serving stale bits.

TEST(ServingTest, MutateStreamsIntoResidentGraph) {
  RegisterBuiltinWorkerApps();
  Graph graph = ServingGraph();
  auto world = MakeTransport("inproc", 4);
  ASSERT_TRUE(world.ok()) << world.status();

  ServeOptions opts;
  opts.transport = world->get();
  opts.num_fragments = 3;
  opts.batch_window_ms = 0;
  opts.load_coordinator = [&graph]() -> Result<FragmentedGraph> {
    auto partitioner = MakePartitioner("hash");
    GRAPE_RETURN_NOT_OK(partitioner.status());
    GRAPE_ASSIGN_OR_RETURN(auto assignment, (*partitioner)->Partition(graph, 3));
    return FragmentBuilder::Build(graph, assignment, 3);
  };
  ServeServer server(opts);
  ASSERT_OK(server.Start());
  ASSERT_OK_AND_ASSIGN(ServeClient client, ServeClient::Connect(server.port()));

  // Prime the CC cache so the first mutation rides the live CC session.
  ASSERT_OK_AND_ASSIGN(auto cc0, client.ComponentLabels());

  // Insert-only batch: a shortcut edge in both directions.
  MutationBatch m1;
  m1.InsertEdge(3, 140, 0.25);
  m1.InsertEdge(140, 3, 0.25);
  ASSERT_OK_AND_ASSIGN(uint64_t v1, client.Mutate(m1));
  EXPECT_EQ(v1, (1ull << 32) | 1u) << "epoch 1, first intra-epoch mutation";
  EXPECT_EQ(server.epoch(), 1u) << "a mutation is not an epoch transition";
  {
    const ServeStats stats = server.stats();
    EXPECT_EQ(stats.mutations, 1u);
    EXPECT_EQ(stats.reloads, 0u);
    EXPECT_EQ(stats.delta_refreshes, 1u)
        << "insert-only batch on the live CC session did not delta-refresh";
  }

  ASSERT_OK_AND_ASSIGN(Graph g1, ApplyMutations(graph, m1));

  // The delta-refreshed CC cache serves the mutated graph's labels as a
  // pure cache hit.
  const uint64_t hits_before = server.stats().cache_hits;
  ASSERT_OK_AND_ASSIGN(auto cc1, client.ComponentLabels());
  EXPECT_GT(server.stats().cache_hits, hits_before)
      << "post-mutation CC read recomputed instead of hitting the "
         "delta-refreshed cache";
  {
    FragmentedGraph ref_fg = MakeFragments(g1, "hash", 3);
    GrapeEngine<CcApp> ref(ref_fg, CcApp{});
    auto full = ref.Run(CcQuery{});
    ASSERT_TRUE(full.ok()) << full.status();
    EXPECT_TRUE(BitEq(cc1, full->label));
  }

  // Point queries answer over G ⊕ M: the shortcut pulls 140 close to 0.
  ASSERT_OK_AND_ASSIGN(auto dist1, client.Sssp(0));
  {
    FragmentedGraph ref_fg = MakeFragments(g1, "hash", 3);
    GrapeEngine<SsspApp> ref(ref_fg, SsspApp{});
    auto full = ref.Run(SsspQuery{0});
    ASSERT_TRUE(full.ok()) << full.status();
    EXPECT_TRUE(BitEq(dist1, full->dist));
  }

  // Deletion batch: takes the shortcut back out. Caches must not serve
  // the stale (too-short) world.
  MutationBatch m2;
  m2.DeleteEdge(3, 140);
  m2.DeleteEdge(140, 3);
  ASSERT_OK_AND_ASSIGN(uint64_t v2, client.Mutate(m2));
  EXPECT_EQ(v2, (1ull << 32) | 2u);
  ASSERT_OK_AND_ASSIGN(Graph g2, ApplyMutations(g1, m2));

  ASSERT_OK_AND_ASSIGN(auto cc2, client.ComponentLabels());
  ASSERT_OK_AND_ASSIGN(auto dist2, client.Sssp(0));
  {
    FragmentedGraph ref_fg = MakeFragments(g2, "hash", 3);
    GrapeEngine<CcApp> ref_cc(ref_fg, CcApp{});
    auto full_cc = ref_cc.Run(CcQuery{});
    ASSERT_TRUE(full_cc.ok()) << full_cc.status();
    EXPECT_TRUE(BitEq(cc2, full_cc->label));
    GrapeEngine<SsspApp> ref_sssp(ref_fg, SsspApp{});
    auto full_sssp = ref_sssp.Run(SsspQuery{0});
    ASSERT_TRUE(full_sssp.ok()) << full_sssp.status();
    EXPECT_TRUE(BitEq(dist2, full_sssp->dist));
  }
  EXPECT_NE(dist1[140], dist2[140])
      << "deleting the shortcut did not change the distance it created";

  // A malformed mutation payload is a request error, not a server death.
  {
    Encoder enc;
    m1.EncodeTo(enc);
    std::vector<uint8_t> bytes = enc.buffer();
    bytes.push_back(0xEE);  // trailing garbage
    auto bad = client.Request(kTagSvMutate, bytes);
    EXPECT_FALSE(bad.ok());
    ASSERT_OK(client.Ping());
  }
  EXPECT_EQ(server.stats().mutations, 2u);
  server.Shutdown();
}

// ---------------------------------------------------------------------------
// Client-facing listener hardening: garbage and oversized frames get one
// error frame, then the connection dies; well-formed traffic on other
// connections is unaffected.

TEST(ServingTest, MalformedAndOversizedFramesRejected) {
  RegisterBuiltinWorkerApps();
  auto world = MakeTransport("inproc", 4);
  ASSERT_TRUE(world.ok()) << world.status();

  ServeOptions opts;
  opts.transport = world->get();
  opts.num_fragments = 3;
  opts.batch_window_ms = 0;
  opts.max_client_frame_bytes = 4096;
  opts.load_coordinator = []() -> Result<FragmentedGraph> {
    GRAPE_ASSIGN_OR_RETURN(Graph g, GeneratePath(8));
    auto partitioner = MakePartitioner("hash");
    GRAPE_RETURN_NOT_OK(partitioner.status());
    GRAPE_ASSIGN_OR_RETURN(auto assignment, (*partitioner)->Partition(g, 3));
    return FragmentBuilder::Build(g, assignment, 3);
  };
  ServeServer server(opts);
  ASSERT_OK(server.Start());

  struct Case {
    const char* name;
    std::vector<uint8_t> bytes;
  };
  std::vector<Case> cases;
  // Pure garbage: the declared payload length lands over the protocol
  // ceiling, so the header itself fails to decode.
  cases.push_back({"garbage header",
                   {0xde, 0xad, 0xbe, 0xef, 0xde, 0xad, 0xbe, 0xef, 0xde, 0xad,
                    0xbe, 0xef, 0xde, 0xad, 0xbe, 0xef}});
  // Valid header, hostile size: inside the 1 GiB protocol bound but over
  // this listener's 4 KiB per-connection budget — rejected before any
  // allocation.
  {
    FrameHeader h;
    h.from = 9;
    h.to = 0;
    h.tag = kTagSvSssp;
    h.payload_len = 1u << 20;
    std::vector<uint8_t> bytes(kFrameHeaderBytes);
    EncodeFrameHeader(h, bytes.data());
    cases.push_back({"oversized frame", std::move(bytes)});
  }
  // Well-formed frame, unknown tag: not a stream-sync loss, but nothing
  // sane can follow a request the protocol cannot name.
  {
    FrameHeader h;
    h.from = 11;
    h.to = 0;
    h.tag = 0x777;
    h.payload_len = 0;
    std::vector<uint8_t> bytes(kFrameHeaderBytes);
    EncodeFrameHeader(h, bytes.data());
    cases.push_back({"unknown tag", std::move(bytes)});
  }

  for (const Case& c : cases) {
    ASSERT_OK_AND_ASSIGN(ServeClient probe,
                         ServeClient::Connect(server.port()));
    ASSERT_OK(probe.SendRawBytes(c.bytes.data(), c.bytes.size()));
    uint32_t id = 0, tag = 0;
    std::vector<uint8_t> payload;
    Status read = probe.ReadRawFrame(&id, &tag, &payload);
    ASSERT_TRUE(read.ok()) << c.name << ": " << read.ToString();
    EXPECT_EQ(tag, kTagSvError) << c.name;
    Status decoded = DecodeServeError(payload);
    EXPECT_FALSE(decoded.ok()) << c.name;
    // The connection must be closed after the error frame.
    Status eof = probe.ReadRawFrame(&id, &tag, &payload);
    EXPECT_TRUE(eof.IsUnavailable()) << c.name << ": " << eof.ToString();
  }
  EXPECT_EQ(server.stats().rejected_frames, cases.size());

  // A well-behaved connection still gets answers after all that abuse.
  ASSERT_OK_AND_ASSIGN(ServeClient good, ServeClient::Connect(server.port()));
  ASSERT_OK(good.Ping());
  ASSERT_OK_AND_ASSIGN(auto dist, good.Sssp(0));
  EXPECT_EQ(dist.size(), 8u);
  server.Shutdown();
}

// ---------------------------------------------------------------------------
// Shared-secret rank admission: an endpoint that does not know the
// cluster token is never admitted to the world — the rendezvous drops its
// hello and both sides fail instead of forming a mixed-secret mesh.

uint16_t GrabFreePort() {
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)),
            0);
  socklen_t len = sizeof(addr);
  EXPECT_EQ(getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len), 0);
  close(fd);
  return ntohs(addr.sin_port);
}

TEST(ServingTest, ClusterTokenMismatchRejectsEndpoint) {
  std::vector<HostPort> hosts = {{"127.0.0.1", GrabFreePort()},
                                 {"127.0.0.1", 0}};
  std::thread endpoint([hosts] {
    Status st = RunTcpEndpointProcess(/*rank=*/1, /*world_size=*/2, hosts[0],
                                      /*mesh_bind_port=*/0,
                                      /*timeout_ms=*/5000, "wrong-secret");
    EXPECT_FALSE(st.ok()) << "endpoint with the wrong token joined the world";
  });

  TcpOptions topts;
  topts.hosts = hosts;
  topts.rendezvous_timeout_ms = 5000;
  topts.cluster_token = "right-secret";
  auto world = TcpTransport::Create(2, topts);
  EXPECT_FALSE(world.ok())
      << "rendezvous completed despite a token-mismatched endpoint";
  endpoint.join();
}

}  // namespace
}  // namespace grape
