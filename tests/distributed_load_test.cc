// Distributed graph loading (rt/distributed_load.h): each worker builds
// its own fragment from its byte-range shard of an edge-list file, and
// rank 0 orchestrates without ever materializing the graph. Gates:
//
//  1. Bit identity — distributed-built fragments are byte-for-byte equal
//     to a coordinator FragmentBuilder::Build over LoadEdgeListFile of the
//     same file with the same assignment (both paths run the same two
//     build halves; the exchange key restores whole-file edge order).
//  2. The golden matrix — every frozen scenario, rebuilt distributed on
//     every backend and computed remotely, reproduces the seed goldens:
//     messages, bytes, supersteps, output hash.
//  3. Coordinator purity — rank 0 sees shard metadata and shape acks
//     only: no edge- or mirror-bearing frame reaches it, and no fragment
//     is ever resident in the coordinator process on endpoint backends.

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "gtest/gtest.h"
#include "partition/partitioner.h"
#include "rt/distributed_load.h"
#include "rt/remote_worker.h"
#include "tests/message_path_scenarios.h"

namespace grape {
namespace {

EdgeListFormat SavedFormat(bool directed) {
  // SaveEdgeListFile writes "src dst weight label".
  EdgeListFormat format;
  format.directed = directed;
  format.has_weight = true;
  format.has_label = true;
  return format;
}

std::string WriteScenarioFile(const Graph& g, const std::string& name) {
  std::string path = ::testing::TempDir() + "/grape_dist_" + name + "_" +
                     std::to_string(getpid()) + ".txt";
  Status s = SaveEdgeListFile(g, path);
  GRAPE_CHECK(s.ok()) << s;
  return path;
}

/// Resolves the scenario's load options against `path`: the hash strategy
/// maps onto the protocol's in-worker hash policy (the same SplitMix64
/// arithmetic HashPartitioner applies), everything else ships the
/// partitioner's assignment explicitly.
DistributedLoadOptions ScenarioLoadOptions(
    const std::string& path, const EdgeListFormat& format,
    const std::string& strategy, FragmentId workers) {
  DistributedLoadOptions opt;
  opt.path = path;
  opt.format = format;
  if (strategy == "hash") {
    opt.partitioner = "hash";
    return opt;
  }
  auto g = LoadEdgeListFile(path, format);
  GRAPE_CHECK(g.ok()) << g.status();
  auto partitioner = MakePartitioner(strategy);
  auto assignment = (*partitioner)->Partition(*g, workers);
  GRAPE_CHECK(assignment.ok()) << assignment.status();
  opt.partitioner = "explicit";
  opt.assignment = std::move(*assignment);
  return opt;
}

std::vector<uint8_t> FragmentBytes(const Fragment& frag) {
  Encoder enc;
  frag.EncodeTo(enc);
  return enc.TakeBuffer();
}

// ------------------------------------------------------------ bit identity

// For every frozen scenario: build the fragments the coordinator way
// (load the whole file at rank 0, FragmentBuilder::Build) and the
// distributed way (DistributedLoad over an inproc world, so the resident
// fragments are reachable in this process), and require byte equality of
// the full wire encoding — topology, labels, border flags, AND the
// complete routing plan.
TEST(DistributedLoadTest, FragmentsBitIdenticalToCoordinatorBuild) {
  for (const auto& s : testing::AllMessagePathScenarios()) {
    Graph g0 = testing::ScenarioGraph(s.graph);
    std::string path = WriteScenarioFile(g0, s.name);
    EdgeListFormat format = SavedFormat(g0.is_directed());
    DistributedLoadOptions opt =
        ScenarioLoadOptions(path, format, s.strategy, s.workers);

    auto g = LoadEdgeListFile(path, format);
    ASSERT_TRUE(g.ok()) << g.status();
    std::vector<FragmentId> assignment;
    if (opt.partitioner == "hash") {
      auto partitioner = MakePartitioner("hash");
      auto a = (*partitioner)->Partition(*g, s.workers);
      ASSERT_TRUE(a.ok()) << a.status();
      assignment = std::move(*a);
    } else {
      assignment = opt.assignment;
    }
    auto fg = FragmentBuilder::Build(*g, assignment, s.workers);
    ASSERT_TRUE(fg.ok()) << fg.status();

    auto world = MakeTransport("inproc", s.workers + 1);
    ASSERT_TRUE(world.ok()) << world.status();
    auto meta = DistributedLoad(world->get(), opt);
    ASSERT_TRUE(meta.ok()) << s.name << ": " << meta.status();
    EXPECT_EQ(meta->coordinator_data_frames, 0u) << s.name;
    EXPECT_EQ(meta->num_fragments, s.workers);
    EXPECT_EQ(meta->total_vertices, g->num_vertices()) << s.name;
    // total_edges counts parsed file lines; an undirected graph stores
    // each line as two directed arcs.
    const uint64_t arcs_per_line = format.directed ? 1 : 2;
    EXPECT_EQ(meta->total_edges * arcs_per_line, g->num_edges()) << s.name;

    for (FragmentId i = 0; i < s.workers; ++i) {
      auto frag =
          ResidentFragmentStore::Global().Get(meta->token, i + 1);
      ASSERT_NE(frag, nullptr)
          << s.name << ": fragment " << i << " not resident";
      EXPECT_EQ(meta->shapes[i].num_inner, frag->num_inner());
      EXPECT_EQ(meta->shapes[i].num_local, frag->num_local());
      EXPECT_EQ(meta->shapes[i].num_arcs, frag->num_edges());
      EXPECT_EQ(FragmentBytes(*frag), FragmentBytes(fg->fragments[i]))
          << s.name << ": fragment " << i
          << " is not bit-identical to the coordinator build";
    }
    ResidentFragmentStore::Global().Erase(meta->token);
    std::remove(path.c_str());
  }
}

// ----------------------------------------------------------- golden cells

struct GoldenRow {
  const char* name;
  uint64_t messages;
  uint64_t bytes;
  uint32_t supersteps;
  uint64_t output_hash;
};

// The seed goldens of tests/message_path_golden_test.cc (keep in sync):
// distributed loading must not perturb a single observable.
const GoldenRow kGolden[] = {
    {"sssp_grid_hash4", 447ull, 485123ull, 31u, 0xc5bc6ee7b40deb61ull},
    {"sssp_grid_metis4", 20ull, 4108ull, 4u, 0xc5bc6ee7b40deb61ull},
    {"sssp_rmat_hash5", 85ull, 16365ull, 6u, 0x34f7a4ad403aaa9ull},
    {"sssp_rmat_metis7", 92ull, 11636ull, 5u, 0x34f7a4ad403aaa9ull},
    {"cc_er_hash6", 51ull, 13699ull, 3u, 0xcd7c9ef3fc5a729full},
    {"cc_er_metis6", 57ull, 13141ull, 3u, 0xcd7c9ef3fc5a729full},
    {"pagerank_rmat_hash4", 372ull, 142428ull, 31u, 0x4414656a78cc731full},
    {"pagerank_rmat_metis5", 434ull, 113566ull, 31u, 0x4414656a78cc731full},
};

/// One distributed run of a frozen scenario: write the scenario graph to
/// an edge file, build it distributed over `transport`, execute remotely
/// against the resident fragments, and observe.
testing::MessagePathObservation RunDistributedScenario(
    const testing::MessagePathScenario& s, const std::string& transport,
    uint64_t* coordinator_data_frames) {
  Graph g0 = testing::ScenarioGraph(s.graph);
  std::string path =
      WriteScenarioFile(g0, std::string(s.name) + "_" + transport);
  EdgeListFormat format = SavedFormat(g0.is_directed());
  DistributedLoadOptions opt =
      ScenarioLoadOptions(path, format, s.strategy, s.workers);

  // Endpoint processes snapshot the registry at fork: register first.
  RegisterBuiltinWorkerApps();
  auto world = MakeTransport(transport, s.workers + 1);
  GRAPE_CHECK(world.ok()) << world.status();
  auto meta = DistributedLoad(world->get(), opt);
  GRAPE_CHECK(meta.ok()) << s.name << " on " << transport << ": "
                         << meta.status();
  if (coordinator_data_frames != nullptr) {
    *coordinator_data_frames = meta->coordinator_data_frames;
  }

  EngineOptions options;
  options.transport = world->get();
  options.remote_app = s.app;
  options.load_mode = "distributed";
  testing::MessagePathObservation obs;
  const std::string app = s.app;
  if (app == "sssp") {
    GrapeEngine<SsspApp> engine(*meta, options);
    auto out = engine.Run(SsspQuery{3});
    GRAPE_CHECK(out.ok()) << out.status();
    obs.output_hash = testing::HashVector(out->dist);
    obs.messages = engine.metrics().messages;
    obs.bytes = engine.metrics().bytes;
    obs.supersteps = engine.metrics().supersteps;
  } else if (app == "cc") {
    GrapeEngine<CcApp> engine(*meta, options);
    auto out = engine.Run(CcQuery{});
    GRAPE_CHECK(out.ok()) << out.status();
    obs.output_hash = testing::HashVector(out->label);
    obs.messages = engine.metrics().messages;
    obs.bytes = engine.metrics().bytes;
    obs.supersteps = engine.metrics().supersteps;
  } else {
    GrapeEngine<PageRankApp> engine(*meta, options);
    PageRankQuery query;
    query.max_iterations = 30;
    auto out = engine.Run(query);
    GRAPE_CHECK(out.ok()) << out.status();
    obs.output_hash = testing::HashVector(out->rank);
    obs.messages = engine.metrics().messages;
    obs.bytes = engine.metrics().bytes;
    obs.supersteps = engine.metrics().supersteps;
  }
  ResidentFragmentStore::Global().Erase(meta->token);
  std::remove(path.c_str());
  return obs;
}

struct DistributedGoldenCase {
  testing::MessagePathScenario scenario;
  std::string transport;
};

std::vector<DistributedGoldenCase> AllDistributedGoldenCases() {
  std::vector<DistributedGoldenCase> cases;
  for (const auto& s : testing::AllMessagePathScenarios()) {
    for (const std::string& t : TransportNames()) {
      cases.push_back(DistributedGoldenCase{s, t});
    }
  }
  return cases;
}

class DistributedLoadGoldenTest
    : public ::testing::TestWithParam<DistributedGoldenCase> {};

// Distributed-built fragments, remote compute, every backend: each cell
// must reproduce the seed goldens exactly, and the coordinator must have
// seen zero edge- or mirror-bearing frames.
TEST_P(DistributedLoadGoldenTest, MatchesSeedSemantics) {
  const auto& s = GetParam().scenario;
  const std::string& transport = GetParam().transport;
  const GoldenRow* golden = nullptr;
  for (const GoldenRow& row : kGolden) {
    if (std::string(row.name) == s.name) golden = &row;
  }
  ASSERT_NE(golden, nullptr) << "no golden row for scenario " << s.name;

  uint64_t coordinator_data_frames = ~0ull;
  testing::MessagePathObservation obs =
      RunDistributedScenario(s, transport, &coordinator_data_frames);
  EXPECT_EQ(coordinator_data_frames, 0u)
      << s.name << " on " << transport
      << ": edge or mirror frames reached the coordinator";
  EXPECT_EQ(obs.messages, golden->messages)
      << s.name << " on " << transport << "/distributed";
  EXPECT_EQ(obs.bytes, golden->bytes)
      << s.name << " on " << transport << "/distributed";
  EXPECT_EQ(obs.supersteps, golden->supersteps)
      << s.name << " on " << transport << "/distributed";
  EXPECT_EQ(obs.output_hash, golden->output_hash)
      << s.name << " on " << transport
      << "/distributed: output is not bit-identical to the seed path";
}

INSTANTIATE_TEST_SUITE_P(Matrix, DistributedLoadGoldenTest,
                         ::testing::ValuesIn(AllDistributedGoldenCases()),
                         [](const auto& info) {
                           return std::string(info.param.scenario.name) +
                                  "_" + info.param.transport;
                         });

// ----------------------------------------------------- coordinator purity

// On endpoint backends the fragments must be resident in the endpoint
// processes and ONLY there: the coordinator process's store stays empty
// for the build token, rank 0 receives no edge/mirror frame, and the
// engine runs the query end to end from shard metadata alone.
TEST(DistributedLoadTest, CoordinatorNeverMaterializesTheGraph) {
  Graph g0 = testing::ScenarioGraph("grid");
  std::string path = WriteScenarioFile(g0, "purity");
  EdgeListFormat format = SavedFormat(g0.is_directed());
  for (const std::string& transport : {std::string("socket"),
                                       std::string("tcp")}) {
    DistributedLoadOptions opt;
    opt.path = path;
    opt.format = format;
    RegisterBuiltinWorkerApps();
    auto world = MakeTransport(transport, 5);
    ASSERT_TRUE(world.ok()) << world.status();
    auto meta = DistributedLoad(world->get(), opt);
    ASSERT_TRUE(meta.ok()) << transport << ": " << meta.status();
    EXPECT_EQ(meta->coordinator_data_frames, 0u) << transport;
    for (uint32_t rank = 0; rank <= 4; ++rank) {
      EXPECT_EQ(ResidentFragmentStore::Global().Get(meta->token, rank),
                nullptr)
          << transport << ": a fragment of the distributed build is "
          << "resident in the coordinator process (rank " << rank << ")";
    }

    EngineOptions options;
    options.transport = world->get();
    options.remote_app = "sssp";
    options.load_mode = "distributed";
    GrapeEngine<SsspApp> engine(*meta, options);
    auto out = engine.Run(SsspQuery{3});
    ASSERT_TRUE(out.ok()) << transport << ": " << out.status();
    for (uint32_t rank = 0; rank <= 4; ++rank) {
      EXPECT_EQ(ResidentFragmentStore::Global().Get(meta->token, rank),
                nullptr)
          << transport << ": running the query materialized a fragment "
          << "at the coordinator";
    }

    // Worlds stay multi-query with resident fragments too.
    auto again = engine.Run(SsspQuery{3});
    ASSERT_TRUE(again.ok()) << transport << ": " << again.status();
    EXPECT_EQ(out->dist, again->dist) << transport;
  }
  std::remove(path.c_str());
}

// --------------------------------------------------------------- failures

TEST(DistributedLoadTest, WorkerSideParseErrorSurfacesAsStatus) {
  std::string path = ::testing::TempDir() + "/grape_dist_bad_" +
                     std::to_string(getpid()) + ".txt";
  {
    std::ofstream out(path);
    for (int i = 0; i < 50; ++i) out << i << " " << i + 1 << "\n";
    out << "this is not an edge\n";
    for (int i = 0; i < 50; ++i) out << i << " " << i + 2 << "\n";
  }
  DistributedLoadOptions opt;
  opt.path = path;
  opt.format = EdgeListFormat{};
  auto world = MakeTransport("inproc", 4);
  ASSERT_TRUE(world.ok());
  auto meta = DistributedLoad(world->get(), opt);
  ASSERT_FALSE(meta.ok()) << "malformed shard line went unnoticed";
  EXPECT_TRUE(meta.status().IsCorruption()) << meta.status();
  std::remove(path.c_str());
}

TEST(DistributedLoadTest, RejectsUndersizedExplicitAssignment) {
  Graph g0 = testing::ScenarioGraph("grid");
  std::string path = WriteScenarioFile(g0, "undersized");
  DistributedLoadOptions opt;
  opt.path = path;
  opt.format = SavedFormat(g0.is_directed());
  opt.partitioner = "explicit";
  opt.assignment.assign(g0.num_vertices() / 2, 0);  // half the universe
  auto world = MakeTransport("inproc", 4);
  ASSERT_TRUE(world.ok());
  auto meta = DistributedLoad(world->get(), opt);
  ASSERT_FALSE(meta.ok());
  EXPECT_TRUE(meta.status().IsInvalidArgument()) << meta.status();
  std::remove(path.c_str());
}

TEST(DistributedLoadTest, MissingFileFailsBeforeAnyFrame) {
  DistributedLoadOptions opt;
  opt.path = "/nonexistent/grape/edges.txt";
  auto world = MakeTransport("inproc", 4);
  ASSERT_TRUE(world.ok());
  auto meta = DistributedLoad(world->get(), opt);
  ASSERT_FALSE(meta.ok());
  EXPECT_TRUE(meta.status().IsIOError()) << meta.status();
}

TEST(DistributedLoadTest, ResidentLoadWithoutBuildIsNotFound) {
  // An engine pointed at a token no build produced must fail cleanly.
  Graph g0 = testing::ScenarioGraph("grid");
  DistributedGraphMeta meta;
  meta.token = 0xdeadbeefULL;  // never issued
  meta.num_fragments = 4;
  meta.total_vertices = g0.num_vertices();
  meta.shapes.assign(4, FragmentShape{1, 1, 0});
  auto world = MakeTransport("inproc", 5);
  ASSERT_TRUE(world.ok());
  EngineOptions options;
  options.transport = world->get();
  options.remote_app = "sssp";
  options.load_mode = "distributed";
  GrapeEngine<SsspApp> engine(meta, options);
  auto out = engine.Run(SsspQuery{3});
  ASSERT_FALSE(out.ok());
  EXPECT_TRUE(out.status().IsNotFound()) << out.status();
}

}  // namespace
}  // namespace grape
