// Fault-tolerant supersteps (the recovery machinery behind
// EngineOptions::checkpoint): the checkpoint image codec must never yield
// a half-restored image under truncation or corruption; the
// CheckpointStore round-trips in both memory and disk modes; the shared
// retry/backoff and liveness primitives honor their bounds; and — the
// core contract — an engine whose world dies at an arbitrary frame budget
// recovers to observables bit-identical to the fault-free run (output
// hash, message/byte counters, superstep count), while a policy-off
// engine behaves exactly as it did before checkpointing existed.

#include <sys/stat.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "apps/cc.h"
#include "apps/pagerank.h"
#include "apps/register_apps.h"
#include "apps/sssp.h"
#include "core/engine.h"
#include "gtest/gtest.h"
#include "rt/checkpoint.h"
#include "rt/comm_world.h"
#include "rt/flaky_transport.h"
#include "rt/liveness.h"
#include "rt/retry.h"
#include "tests/message_path_scenarios.h"
#include "tests/test_util.h"

namespace grape {
namespace {

CheckpointImage MakeImage() {
  CheckpointImage image;
  image.rank = 3;
  image.round = 17;
  image.state = {0xde, 0xad, 0xbe, 0xef, 0x00, 0x01, 0x7f, 0xff};
  CheckpointImage::PendingWireFrame f1;
  f1.from = 2;
  f1.tag = 0x112;
  f1.payload = {1, 2, 3};
  CheckpointImage::PendingWireFrame f2;
  f2.from = 4;
  f2.tag = 0x112;
  f2.payload = {};  // empty payloads must survive too
  image.pending.push_back(f1);
  image.pending.push_back(f2);
  return image;
}

TEST(CheckpointCodecTest, RoundTripsAllFields) {
  CheckpointImage image = MakeImage();
  std::vector<uint8_t> encoded = EncodeCheckpointImage(image);
  auto decoded = DecodeCheckpointImage(encoded.data(), encoded.size());
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->rank, image.rank);
  EXPECT_EQ(decoded->round, image.round);
  EXPECT_EQ(decoded->state, image.state);
  ASSERT_EQ(decoded->pending.size(), image.pending.size());
  for (size_t i = 0; i < image.pending.size(); ++i) {
    EXPECT_EQ(decoded->pending[i].from, image.pending[i].from);
    EXPECT_EQ(decoded->pending[i].tag, image.pending[i].tag);
    EXPECT_EQ(decoded->pending[i].payload, image.pending[i].payload);
  }
}

TEST(CheckpointCodecTest, EveryTruncationPrefixIsRejected) {
  std::vector<uint8_t> encoded = EncodeCheckpointImage(MakeImage());
  for (size_t len = 0; len < encoded.size(); ++len) {
    auto decoded = DecodeCheckpointImage(encoded.data(), len);
    ASSERT_FALSE(decoded.ok())
        << "truncation to " << len << "/" << encoded.size()
        << " bytes decoded successfully";
    // InvalidArgument from the codec's own length checks; Corruption when
    // the cut falls inside a primitive and the decoder runs off the end.
    EXPECT_TRUE(decoded.status().IsInvalidArgument() ||
                decoded.status().IsCorruption())
        << "truncation to " << len << " bytes: " << decoded.status();
  }
}

TEST(CheckpointCodecTest, EveryByteCorruptionIsRejected) {
  std::vector<uint8_t> encoded = EncodeCheckpointImage(MakeImage());
  for (size_t i = 0; i < encoded.size(); ++i) {
    std::vector<uint8_t> corrupt = encoded;
    corrupt[i] ^= 0xff;
    auto decoded = DecodeCheckpointImage(corrupt.data(), corrupt.size());
    ASSERT_FALSE(decoded.ok())
        << "flipping byte " << i << " still decoded successfully";
    EXPECT_TRUE(decoded.status().IsInvalidArgument() ||
                decoded.status().IsCorruption())
        << "byte " << i << ": " << decoded.status();
  }
}

TEST(CheckpointCodecTest, TrailingGarbageIsRejected) {
  std::vector<uint8_t> encoded = EncodeCheckpointImage(MakeImage());
  encoded.push_back(0x42);
  auto decoded = DecodeCheckpointImage(encoded.data(), encoded.size());
  ASSERT_FALSE(decoded.ok());
  EXPECT_TRUE(decoded.status().IsInvalidArgument()) << decoded.status();
}

TEST(CheckpointStoreTest, MemoryModeRoundTrips) {
  CheckpointStore store;
  EXPECT_FALSE(store.disk_backed());
  EXPECT_FALSE(store.Has(1, 17));
  EXPECT_TRUE(store.Get(1, 17).status().IsNotFound());
  EXPECT_TRUE(store.GetEncoded(1, 17).status().IsNotFound());

  CheckpointImage image = MakeImage();  // rank 3, round 17
  std::vector<uint8_t> encoded = EncodeCheckpointImage(image);
  ASSERT_OK(store.Put(3, 17, encoded));
  EXPECT_TRUE(store.Has(3, 17));
  EXPECT_EQ(store.TotalBytes(), encoded.size());

  auto raw = store.GetEncoded(3, 17);
  ASSERT_TRUE(raw.ok()) << raw.status();
  EXPECT_EQ(*raw, encoded);
  auto got = store.Get(3, 17);
  ASSERT_TRUE(got.ok()) << got.status();
  EXPECT_EQ(got->round, image.round);
  EXPECT_EQ(got->state, image.state);
  store.Clear();
  EXPECT_FALSE(store.Has(3, 17));
}

TEST(CheckpointStoreTest, KeepsThePreviousRoundThroughATornBarrier) {
  // A crash mid-checkpoint can commit round 18 for some ranks only; the
  // last complete barrier (17) must survive that partial commit so every
  // rank can still restore a consistent cut. Only a third round may
  // garbage-collect the first.
  CheckpointStore store;
  CheckpointImage image = MakeImage();
  ASSERT_OK(store.Put(3, 17, EncodeCheckpointImage(image)));
  image.round = 18;
  ASSERT_OK(store.Put(3, 18, EncodeCheckpointImage(image)));
  EXPECT_TRUE(store.Has(3, 17)) << "previous round GC'd too early";
  EXPECT_TRUE(store.Has(3, 18));
  EXPECT_EQ(store.Get(3, 17)->round, 17u);

  image.round = 19;
  ASSERT_OK(store.Put(3, 19, EncodeCheckpointImage(image)));
  EXPECT_FALSE(store.Has(3, 17)) << "keep-two GC never fired";
  EXPECT_TRUE(store.Has(3, 18));
  EXPECT_TRUE(store.Has(3, 19));
}

TEST(CheckpointStoreTest, DiskModeRoundTripsAtomically) {
  const std::string dir = ::testing::TempDir() + "/grape_ckpt_store_" +
                          std::to_string(getpid());
  ASSERT_EQ(::mkdir(dir.c_str(), 0755), 0);
  CheckpointStore store(dir);
  EXPECT_TRUE(store.disk_backed());
  EXPECT_FALSE(store.Has(3, 17));
  EXPECT_TRUE(store.Get(3, 17).status().IsNotFound());

  CheckpointImage image = MakeImage();  // rank 3, round 17
  std::vector<uint8_t> encoded = EncodeCheckpointImage(image);
  ASSERT_OK(store.Put(3, 17, encoded));
  EXPECT_TRUE(store.Has(3, 17));
  EXPECT_EQ(store.TotalBytes(), encoded.size());
  // The tmp file from the atomic rename must be gone.
  EXPECT_NE(::access((store.PathFor(3, 17) + ".tmp").c_str(), F_OK), 0);

  // A second store over the same directory sees the persisted image —
  // exactly what a respawned worker does on restore.
  CheckpointStore reopened(dir);
  EXPECT_TRUE(reopened.Has(3, 17));
  auto got = reopened.Get(3, 17);
  ASSERT_TRUE(got.ok()) << got.status();
  EXPECT_EQ(got->rank, image.rank);
  EXPECT_EQ(got->state, image.state);

  // Keep-two GC works across instances via the directory scan: rounds
  // 18 and 19 written by a FRESH store (a respawned worker has no
  // in-process memory of round 17) still evict 17's file.
  image.round = 18;
  ASSERT_OK(CheckpointStore(dir).Put(3, 18, EncodeCheckpointImage(image)));
  EXPECT_TRUE(reopened.Has(3, 17)) << "previous round GC'd too early";
  image.round = 19;
  ASSERT_OK(CheckpointStore(dir).Put(3, 19, EncodeCheckpointImage(image)));
  EXPECT_FALSE(reopened.Has(3, 17)) << "cross-instance GC never fired";
  EXPECT_TRUE(reopened.Has(3, 18));
  EXPECT_TRUE(reopened.Has(3, 19));

  store.Clear();
  EXPECT_FALSE(store.Has(3, 17));
  EXPECT_FALSE(reopened.Has(3, 18)) << "Clear left other instances' files";
  EXPECT_FALSE(reopened.Has(3, 19));
  ::rmdir(dir.c_str());
}

TEST(CheckpointStoreTest, DiskModeRejectsCorruptedFile) {
  const std::string dir = ::testing::TempDir() + "/grape_ckpt_corrupt_" +
                          std::to_string(getpid());
  ASSERT_EQ(::mkdir(dir.c_str(), 0755), 0);
  CheckpointStore store(dir);
  std::vector<uint8_t> encoded = EncodeCheckpointImage(MakeImage());
  ASSERT_OK(store.Put(5, 17, encoded));

  // Flip one byte in the middle of the on-disk image.
  const std::string path = store.PathFor(5, 17);
  FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fseek(f, static_cast<long>(encoded.size() / 2), SEEK_SET), 0);
  int c = std::fgetc(f);
  ASSERT_NE(c, EOF);
  ASSERT_EQ(std::fseek(f, -1, SEEK_CUR), 0);
  std::fputc(c ^ 0xff, f);
  std::fclose(f);

  auto got = store.Get(5, 17);
  ASSERT_FALSE(got.ok()) << "corrupted on-disk checkpoint decoded";
  EXPECT_TRUE(got.status().IsInvalidArgument()) << got.status();
  store.Clear();
  ::rmdir(dir.c_str());
}

TEST(RetryTest, AttemptCapBoundsTheLoop) {
  RetryPolicy policy;
  policy.initial_backoff_ms = 1;
  policy.max_backoff_ms = 2;
  policy.jitter_pct = 0;
  policy.max_attempts = 3;
  RetryState retry(policy, /*deadline_ms=*/0);
  EXPECT_TRUE(retry.CanAttempt());
  EXPECT_TRUE(retry.BackoffOrGiveUp());
  EXPECT_TRUE(retry.BackoffOrGiveUp());
  EXPECT_FALSE(retry.BackoffOrGiveUp()) << "attempt cap did not bind";
  EXPECT_FALSE(retry.CanAttempt());
  EXPECT_EQ(retry.attempts(), 3u);
}

TEST(RetryTest, DeadlineBoundsTheLoop) {
  RetryPolicy policy;
  policy.initial_backoff_ms = 5;
  policy.max_backoff_ms = 10;
  const uint64_t deadline = RetryState::NowMs() + 40;
  RetryState retry(policy, deadline, /*jitter_seed=*/7);
  int spins = 0;
  while (retry.BackoffOrGiveUp()) {
    ASSERT_LT(++spins, 1000) << "deadline never bound the retry loop";
  }
  // BackoffOrGiveUp clamps its sleep to the deadline, so the loop exits
  // at the deadline, not a full backoff period past it.
  EXPECT_GE(RetryState::NowMs() + 2, deadline);
  EXPECT_LT(RetryState::NowMs(), deadline + 1000);
}

TEST(LivenessTest, ProbeDetectsDeathAndLeaseAloneNeverFails) {
  WorkerLivenessMonitor monitor(2, /*lease_ms=*/10);
  // No probe installed: Check never fails, no matter how stale the lease.
  std::this_thread::sleep_for(std::chrono::milliseconds(25));
  ASSERT_OK(monitor.Check());

  bool dead = false;
  monitor.set_pid_probe([&dead](uint32_t frag) { return frag == 1 && dead; });
  ASSERT_OK(monitor.Check());
  dead = true;
  Status st = monitor.Check();
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.IsUnavailable()) << st;
}

TEST(LivenessTest, PingsAreLeaseGatedAndNotFlooding) {
  WorkerLivenessMonitor monitor(1, /*lease_ms=*/30);
  EXPECT_FALSE(monitor.ShouldPing(0)) << "pinged inside a fresh lease";
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  EXPECT_TRUE(monitor.ShouldPing(0)) << "stale lease never triggered a ping";
  EXPECT_FALSE(monitor.ShouldPing(0)) << "ping clock did not debounce";
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  monitor.Heard(0);
  EXPECT_FALSE(monitor.ShouldPing(0)) << "proof of life did not renew lease";

  WorkerLivenessMonitor disabled(1, /*lease_ms=*/0);
  EXPECT_FALSE(disabled.ShouldPing(0)) << "lease 0 must disable pings";
}

// ---------------------------------------------------------------------------
// Engine recovery over FlakyTransport's deterministic crash knobs. The
// inproc twin of the SIGKILL matrix in transport_fault_test.cc: the world
// "dies" after an exact frame budget, the engine rebuilds it via
// Recover(), restores workers from the last checkpoint, and the finished
// run must be indistinguishable from the fault-free one.
// ---------------------------------------------------------------------------

struct RemoteObs {
  bool ok = false;
  Status status;
  uint64_t messages = 0;
  uint64_t bytes = 0;
  uint32_t supersteps = 0;
  uint64_t hash = 0;
  uint32_t recoveries = 0;
  uint32_t checkpoints = 0;
  uint64_t checkpoint_bytes = 0;
  std::string metrics_text;
  uint64_t accepted_frames = 0;
};

/// Runs `AppT` as remote compute over CommWorld wrapped in a
/// FlakyTransport, returning every observable the recovery contract
/// compares. `hash_out` maps the app's output to its golden hash.
template <typename AppT, typename QueryT, typename HashFn>
RemoteObs RunRemoteFlaky(const FragmentedGraph& fg, const char* app_name,
                         QueryT query, FlakyOptions fo, CheckpointPolicy cp,
                         HashFn hash_out,
                         EngineTimingOptions timing = EngineTimingOptions{},
                         int remote_timeout_ms = 30000) {
  RegisterBuiltinWorkerApps();
  CommWorld inner(static_cast<uint32_t>(fg.fragments.size()) + 1);
  FlakyTransport flaky(&inner, fo);
  EngineOptions options;
  options.transport = &flaky;
  options.remote_app = app_name;
  options.max_supersteps = 2000;
  options.remote_timeout_ms = remote_timeout_ms;
  options.checkpoint = cp;
  options.timing = timing;
  options.verbose = ::getenv("GRAPE_TEST_VERBOSE") != nullptr;
  GrapeEngine<AppT> engine(fg, AppT{}, options);
  auto out = engine.Run(query);
  RemoteObs obs;
  obs.ok = out.ok();
  obs.status = out.status();
  const EngineMetrics& m = engine.metrics();
  obs.messages = m.messages;
  obs.bytes = m.bytes;
  obs.supersteps = m.supersteps;
  obs.recoveries = m.recoveries;
  obs.checkpoints = m.checkpoints;
  obs.checkpoint_bytes = m.checkpoint_bytes;
  obs.metrics_text = m.ToString();
  obs.accepted_frames = flaky.accepted();
  if (out.ok()) obs.hash = hash_out(*out);
  return obs;
}

CheckpointPolicy EveryStepPolicy() {
  CheckpointPolicy cp;
  cp.every_k = 1;
  // Pings are wall-clock driven and would perturb the deterministic frame
  // budgets below; a generous lease keeps them out of fast test runs.
  cp.lease_ms = 60000;
  return cp;
}

/// One app's crash matrix: a clean run fixes the golden observables and
/// the total frame budget, then the world is killed at several fractions
/// of that budget — early (often before the first checkpoint, exercising
/// the cold-restart path), middle, and late (mid-fixpoint or during
/// assemble). Every recovered run must match the golden bit for bit.
template <typename AppT, typename QueryT, typename HashFn>
void RunCrashMatrix(const char* app_name, const FragmentedGraph& fg,
                    QueryT query, HashFn hash_out) {
  RemoteObs golden = RunRemoteFlaky<AppT>(fg, app_name, query, FlakyOptions{},
                                          EveryStepPolicy(), hash_out);
  ASSERT_TRUE(golden.ok) << app_name << " clean run failed: " << golden.status;
  ASSERT_EQ(golden.recoveries, 0u);
  ASSERT_GT(golden.accepted_frames, 20u) << "budget too small to kill inside";

  for (double frac : {0.1, 0.5, 0.9}) {
    FlakyOptions fo;
    fo.kill_after_frames =
        std::max<uint64_t>(1, static_cast<uint64_t>(
                                  golden.accepted_frames * frac));
    RemoteObs got = RunRemoteFlaky<AppT>(fg, app_name, query, fo,
                                         EveryStepPolicy(), hash_out);
    SCOPED_TRACE(std::string(app_name) + " killed after frame " +
                 std::to_string(fo.kill_after_frames) + "/" +
                 std::to_string(golden.accepted_frames));
    ASSERT_TRUE(got.ok) << got.status;
    EXPECT_GE(got.recoveries, 1u) << "fault plan injected nothing";
    EXPECT_EQ(got.hash, golden.hash) << "recovered output diverged";
    EXPECT_EQ(got.messages, golden.messages);
    EXPECT_EQ(got.bytes, golden.bytes);
    EXPECT_EQ(got.supersteps, golden.supersteps);
  }
}

TEST(CheckpointRecoveryTest, SsspRecoversBitIdentical) {
  Graph g = testing::ScenarioGraph("grid");
  FragmentedGraph fg = testing::ScenarioFragments(g, "hash", 4);
  RunCrashMatrix<SsspApp>("sssp", fg, SsspQuery{3}, [](const SsspOutput& o) {
    return testing::HashVector(o.dist);
  });
}

TEST(CheckpointRecoveryTest, CcRecoversBitIdentical) {
  Graph g = testing::ScenarioGraph("er");
  FragmentedGraph fg = testing::ScenarioFragments(g, "hash", 6);
  RunCrashMatrix<CcApp>("cc", fg, CcQuery{}, [](const CcOutput& o) {
    return testing::HashVector(o.label);
  });
}

TEST(CheckpointRecoveryTest, PageRankRecoversBitIdentical) {
  Graph g = testing::ScenarioGraph("rmat");
  FragmentedGraph fg = testing::ScenarioFragments(g, "hash", 4);
  PageRankQuery query;
  query.max_iterations = 30;
  RunCrashMatrix<PageRankApp>("pagerank", fg, query,
                              [](const PageRankOutput& o) {
                                return testing::HashVector(o.rank);
                              });
}

TEST(CheckpointRecoveryTest, DiskBackedCheckpointsRestoreTheSameWay) {
  const std::string dir = ::testing::TempDir() + "/grape_ckpt_engine_" +
                          std::to_string(getpid());
  ASSERT_EQ(::mkdir(dir.c_str(), 0755), 0);
  Graph g = testing::ScenarioGraph("grid");
  FragmentedGraph fg = testing::ScenarioFragments(g, "hash", 4);
  auto hash = [](const SsspOutput& o) { return testing::HashVector(o.dist); };

  CheckpointPolicy cp = EveryStepPolicy();
  cp.dir = dir;
  RemoteObs golden = RunRemoteFlaky<SsspApp>(fg, "sssp", SsspQuery{3},
                                             FlakyOptions{}, cp, hash);
  ASSERT_TRUE(golden.ok) << golden.status;
  // Workers persisted real per-rank images under the directory; with
  // every_k=1 the final barrier is the last superstep.
  CheckpointStore probe(dir);
  for (uint32_t rank = 1; rank <= 4; ++rank) {
    EXPECT_TRUE(probe.Has(rank, golden.supersteps))
        << "no checkpoint file for rank " << rank << " at superstep "
        << golden.supersteps;
  }

  FlakyOptions fo;
  fo.kill_after_frames = golden.accepted_frames / 2;
  RemoteObs got = RunRemoteFlaky<SsspApp>(fg, "sssp", SsspQuery{3}, fo, cp,
                                          hash);
  ASSERT_TRUE(got.ok) << got.status;
  EXPECT_GE(got.recoveries, 1u);
  EXPECT_EQ(got.hash, golden.hash);
  EXPECT_EQ(got.messages, golden.messages);
  EXPECT_EQ(got.supersteps, golden.supersteps);

  CheckpointStore(dir).Clear();
  ::rmdir(dir.c_str());
}

TEST(CheckpointRecoveryTest, PartitionHealsAndRunStillMatchesGolden) {
  Graph g = testing::ScenarioGraph("grid");
  FragmentedGraph fg = testing::ScenarioFragments(g, "hash", 4);
  auto hash = [](const SsspOutput& o) { return testing::HashVector(o.dist); };
  RemoteObs golden = RunRemoteFlaky<SsspApp>(fg, "sssp", SsspQuery{3},
                                             FlakyOptions{}, EveryStepPolicy(),
                                             hash);
  ASSERT_TRUE(golden.ok) << golden.status;

  FlakyOptions fo;
  fo.partition_after_frames = golden.accepted_frames / 2;
  fo.partition_heal_frames = 2;  // two frames lost, then the link heals
  CheckpointPolicy cp = EveryStepPolicy();
  cp.max_recoveries = 5;  // each lost frame can cost one attempt
  RemoteObs got =
      RunRemoteFlaky<SsspApp>(fg, "sssp", SsspQuery{3}, fo, cp, hash);
  ASSERT_TRUE(got.ok) << got.status;
  EXPECT_GE(got.recoveries, 1u);
  EXPECT_EQ(got.hash, golden.hash);
  EXPECT_EQ(got.messages, golden.messages);
  EXPECT_EQ(got.supersteps, golden.supersteps);
}

TEST(CheckpointRecoveryTest, GivesUpAfterMaxRecoveries) {
  Graph g = testing::ScenarioGraph("grid");
  FragmentedGraph fg = testing::ScenarioFragments(g, "hash", 4);
  FlakyOptions fo;
  fo.fail_send_after = 30;  // persistent: survives Recover, every retry dies
  CheckpointPolicy cp = EveryStepPolicy();
  cp.max_recoveries = 2;
  RemoteObs got = RunRemoteFlaky<SsspApp>(
      fg, "sssp", SsspQuery{3}, fo, cp,
      [](const SsspOutput& o) { return testing::HashVector(o.dist); });
  ASSERT_FALSE(got.ok) << "a persistent fault must exhaust the retry budget";
  EXPECT_TRUE(got.status.IsUnavailable()) << got.status;
}

TEST(CheckpointRecoveryTest, PolicyOffDeathStaysFatal) {
  Graph g = testing::ScenarioGraph("grid");
  FragmentedGraph fg = testing::ScenarioFragments(g, "hash", 4);
  FlakyOptions fo;
  fo.kill_after_frames = 40;
  RemoteObs got = RunRemoteFlaky<SsspApp>(
      fg, "sssp", SsspQuery{3}, fo, CheckpointPolicy{},
      [](const SsspOutput& o) { return testing::HashVector(o.dist); });
  ASSERT_FALSE(got.ok) << "engine silently recovered with the policy off";
  EXPECT_TRUE(got.status.IsUnavailable()) << got.status;
  EXPECT_EQ(got.recoveries, 0u);
}

// ---------------------------------------------------------------------------
// Policy-off invariance and checkpoint cost accounting.
// ---------------------------------------------------------------------------

TEST(CheckpointRecoveryTest, PolicyOffBehaviorMatchesPreCheckpointEngine) {
  // The frozen message-path scenario runner predates checkpointing; a
  // default-policy engine must reproduce its observables exactly, and its
  // metrics line must not grow checkpoint fields.
  testing::MessagePathObservation frozen = testing::RunMessagePathScenario(
      "sssp", "grid", "hash", 4, "inproc", "remote");
  Graph g = testing::ScenarioGraph("grid");
  FragmentedGraph fg = testing::ScenarioFragments(g, "hash", 4);
  RemoteObs got = RunRemoteFlaky<SsspApp>(
      fg, "sssp", SsspQuery{3}, FlakyOptions{}, CheckpointPolicy{},
      [](const SsspOutput& o) { return testing::HashVector(o.dist); });
  ASSERT_TRUE(got.ok) << got.status;
  EXPECT_EQ(got.hash, frozen.output_hash);
  EXPECT_EQ(got.messages, frozen.messages);
  EXPECT_EQ(got.bytes, frozen.bytes);
  EXPECT_EQ(got.supersteps, frozen.supersteps);
  EXPECT_EQ(got.checkpoints, 0u);
  EXPECT_EQ(got.checkpoint_bytes, 0u);
  EXPECT_EQ(got.metrics_text.find("ckpts="), std::string::npos)
      << "policy-off metrics grew checkpoint fields: " << got.metrics_text;
}

TEST(CheckpointRecoveryTest, CheckpointingLeavesCommStatsUntouched) {
  // Checkpoint/ack/ping frames are control traffic: with the policy ON and
  // no fault injected, CommStats and the output must match the frozen
  // scenario byte for byte — only the checkpoint counters may move.
  testing::MessagePathObservation frozen = testing::RunMessagePathScenario(
      "sssp", "grid", "hash", 4, "inproc", "remote");
  Graph g = testing::ScenarioGraph("grid");
  FragmentedGraph fg = testing::ScenarioFragments(g, "hash", 4);
  RemoteObs got = RunRemoteFlaky<SsspApp>(
      fg, "sssp", SsspQuery{3}, FlakyOptions{}, EveryStepPolicy(),
      [](const SsspOutput& o) { return testing::HashVector(o.dist); });
  ASSERT_TRUE(got.ok) << got.status;
  EXPECT_EQ(got.hash, frozen.output_hash);
  EXPECT_EQ(got.messages, frozen.messages);
  EXPECT_EQ(got.bytes, frozen.bytes);
  EXPECT_EQ(got.supersteps, frozen.supersteps);
  EXPECT_EQ(got.checkpoints, got.supersteps)
      << "every_k=1 must checkpoint every superstep";
  EXPECT_GT(got.checkpoint_bytes, 0u);
  EXPECT_NE(got.metrics_text.find("ckpts="), std::string::npos)
      << got.metrics_text;
}

// ---------------------------------------------------------------------------
// Timing knobs: the hoisted poll/deadline configuration must still make
// deadlines fire — a silent substrate fails the run within
// remote_timeout_ms-ish, never hangs, with default and custom knobs.
// ---------------------------------------------------------------------------

TEST(EngineTimingTest, RemoteDeadlineFiresUnderSilentSubstrate) {
  Graph g = testing::ScenarioGraph("grid");
  FragmentedGraph fg = testing::ScenarioFragments(g, "hash", 4);
  FlakyOptions fo;
  fo.drop_rate = 1.0;  // every frame vanishes: workers never hear anything

  for (bool custom : {false, true}) {
    EngineTimingOptions timing;
    if (custom) {
      timing.poll_interval_us = 200;
      timing.idle_spins = 4;
      timing.idle_poll_interval_us = 2000;
    }
    const auto start = std::chrono::steady_clock::now();
    RemoteObs got = RunRemoteFlaky<SsspApp>(
        fg, "sssp", SsspQuery{3}, fo, CheckpointPolicy{},
        [](const SsspOutput& o) { return testing::HashVector(o.dist); },
        timing, /*remote_timeout_ms=*/300);
    const auto elapsed = std::chrono::steady_clock::now() - start;
    SCOPED_TRACE(custom ? "custom timing" : "default timing");
    ASSERT_FALSE(got.ok) << "silent substrate produced a result";
    EXPECT_TRUE(got.status.IsUnavailable()) << got.status;
    EXPECT_LT(std::chrono::duration_cast<std::chrono::seconds>(elapsed)
                  .count(),
              10)
        << "deadline fired far too late";
  }
}

}  // namespace
}  // namespace grape
