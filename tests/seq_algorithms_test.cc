#include <algorithm>
#include <numeric>

#include "apps/seq/seq_algorithms.h"
#include "graph/generators.h"
#include "gtest/gtest.h"

namespace grape {
namespace {

TEST(SeqDijkstraTest, HandComputedDistances) {
  GraphBuilder builder(true);
  builder.AddEdge(0, 1, 7);
  builder.AddEdge(0, 2, 9);
  builder.AddEdge(0, 5, 14);
  builder.AddEdge(1, 2, 10);
  builder.AddEdge(1, 3, 15);
  builder.AddEdge(2, 3, 11);
  builder.AddEdge(2, 5, 2);
  builder.AddEdge(3, 4, 6);
  builder.AddEdge(5, 4, 9);
  auto g = std::move(builder).Build();
  ASSERT_TRUE(g.ok());
  auto dist = SeqDijkstra(*g, 0);
  EXPECT_DOUBLE_EQ(dist[0], 0);
  EXPECT_DOUBLE_EQ(dist[1], 7);
  EXPECT_DOUBLE_EQ(dist[2], 9);
  EXPECT_DOUBLE_EQ(dist[3], 20);
  EXPECT_DOUBLE_EQ(dist[4], 20);
  EXPECT_DOUBLE_EQ(dist[5], 11);
}

TEST(SeqDijkstraTest, TriangleInequalityProperty) {
  auto g = GenerateErdosRenyi(200, 1500, true, 1201);
  ASSERT_TRUE(g.ok());
  auto dist = SeqDijkstra(*g, 0);
  // Relaxed edges cannot violate the triangle inequality at a fixed point.
  for (VertexId u = 0; u < g->num_vertices(); ++u) {
    if (dist[u] == kInfDistance) continue;
    for (const Neighbor& nb : g->OutNeighbors(u)) {
      EXPECT_LE(dist[nb.vertex], dist[u] + nb.weight + 1e-12);
    }
  }
}

TEST(SeqDijkstraTest, InvalidSourceUnreachable) {
  auto g = GeneratePath(5);
  ASSERT_TRUE(g.ok());
  auto dist = SeqDijkstra(*g, 99);
  for (double d : dist) EXPECT_EQ(d, kInfDistance);
}

TEST(SeqBfsTest, MatchesDijkstraOnUnitWeights) {
  GraphBuilder builder(true);
  auto base = GenerateErdosRenyi(150, 900, true, 1213);
  ASSERT_TRUE(base.ok());
  for (const Edge& e : base->ToEdgeList()) {
    builder.AddEdge(e.src, e.dst, 1.0);
  }
  auto g = std::move(builder).Build();
  ASSERT_TRUE(g.ok());
  auto depth = SeqBfs(*g, 3);
  auto dist = SeqDijkstra(*g, 3);
  for (VertexId v = 0; v < g->num_vertices(); ++v) {
    if (depth[v] == UINT32_MAX) {
      EXPECT_EQ(dist[v], kInfDistance);
    } else {
      EXPECT_DOUBLE_EQ(static_cast<double>(depth[v]), dist[v]);
    }
  }
}

TEST(SeqCcTest, LabelsAreComponentMinima) {
  auto g = GenerateErdosRenyi(300, 400, false, 1217);  // sparse => many CCs
  ASSERT_TRUE(g.ok());
  auto label = SeqConnectedComponents(*g);
  // Every vertex's label is <= its id and is a fixed point of relabeling.
  for (VertexId v = 0; v < g->num_vertices(); ++v) {
    EXPECT_LE(label[v], v);
    EXPECT_EQ(label[label[v]], label[v]);
    for (const Neighbor& nb : g->OutNeighbors(v)) {
      EXPECT_EQ(label[v], label[nb.vertex]);
    }
  }
}

TEST(SeqPageRankTest, UniformOnCycle) {
  auto g = GenerateCycle(10, true);
  ASSERT_TRUE(g.ok());
  PageRankConfig config;
  auto rank = SeqPageRank(*g, config);
  for (double r : rank) EXPECT_NEAR(r, 0.1, 1e-9);
}

TEST(SeqPageRankTest, MassBoundedByOne) {
  RMatOptions opts;
  opts.scale = 9;
  opts.seed = 1223;
  auto g = GenerateRMat(opts);
  ASSERT_TRUE(g.ok());
  PageRankConfig config;
  config.max_iterations = 60;
  auto rank = SeqPageRank(*g, config);
  double mass = std::accumulate(rank.begin(), rank.end(), 0.0);
  EXPECT_LE(mass, 1.0 + 1e-9);
  for (double r : rank) EXPECT_GT(r, 0.0);
}

TEST(SeqPageRankTest, DampingZeroIsUniform) {
  auto g = GenerateStar(5, true);
  ASSERT_TRUE(g.ok());
  PageRankConfig config;
  config.damping = 0.0;
  auto rank = SeqPageRank(*g, config);
  for (double r : rank) EXPECT_NEAR(r, 1.0 / 6, 1e-12);
}

TEST(SeqKeywordTest, ZeroOnKeywordVertices) {
  LabeledGraphOptions opts;
  opts.scale = 8;
  opts.num_vertex_labels = 4;
  opts.seed = 1229;
  auto g = GenerateLabeledGraph(opts);
  ASSERT_TRUE(g.ok());
  auto dist = SeqKeywordDistance(*g, 2);
  for (VertexId v = 0; v < g->num_vertices(); ++v) {
    if (g->vertex_label(v) == 2) {
      EXPECT_DOUBLE_EQ(dist[v], 0.0);
    } else {
      EXPECT_GT(dist[v], 0.0);
    }
  }
}

TEST(SeqKeywordTest, AbsentKeywordUnreachable) {
  LabeledGraphOptions opts;
  opts.scale = 7;
  opts.num_vertex_labels = 2;
  opts.seed = 1231;
  auto g = GenerateLabeledGraph(opts);
  ASSERT_TRUE(g.ok());
  auto dist = SeqKeywordDistance(*g, 77);
  for (double d : dist) EXPECT_EQ(d, kInfDistance);
}

TEST(SeqIncrementalSsspTest, EquivalentToRecomputation) {
  auto g = GenerateErdosRenyi(250, 2000, true, 1237);
  ASSERT_TRUE(g.ok());
  auto dist = SeqDijkstra(*g, 0);
  // Simulate an improvement at several vertices and propagate.
  std::vector<double> hacked = dist;
  std::vector<VertexId> seeds;
  for (VertexId v : {17u, 99u, 200u}) {
    if (hacked[v] > 1.0 && hacked[v] < kInfDistance) {
      hacked[v] -= 1.0;
      seeds.push_back(v);
    }
  }
  ASSERT_FALSE(seeds.empty());
  SeqIncrementalSssp(*g, hacked, seeds);
  // Fixed point: no edge can relax further.
  for (VertexId u = 0; u < g->num_vertices(); ++u) {
    if (hacked[u] == kInfDistance) continue;
    for (const Neighbor& nb : g->OutNeighbors(u)) {
      EXPECT_LE(hacked[nb.vertex], hacked[u] + nb.weight + 1e-12);
    }
  }
}

}  // namespace
}  // namespace grape
