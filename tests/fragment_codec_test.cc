// Round-trip and corruption coverage for the fragment wire format
// (Fragment::EncodeTo/DecodeFrom): the payload a kTagWkLoad frame ships
// to a remote worker host. A decoded fragment must be indistinguishable
// from the built one — topology, labels, border set, and the complete
// routing plan (mirror destinations, outer owner routes, shared owner
// tables) — across empty fragments, single-vertex graphs, and
// mirror-heavy METIS cuts. Corrupt buffers (truncations, flipped counts,
// out-of-range ids) must be rejected with a sticky Status and must never
// leave a half-written fragment behind: remote workers run app code
// straight off these tables, so an accepted-then-mangled decode would be
// remote code execution on garbage indices.

#include <cstring>
#include <string>
#include <vector>

#include "graph/generators.h"
#include "graph/graph.h"
#include "gtest/gtest.h"
#include "partition/fragment.h"
#include "partition/partitioner.h"
#include "tests/test_util.h"
#include "util/random.h"
#include "util/serializer.h"

namespace grape {
namespace {

FragmentedGraph BuildFragments(const Graph& g, const std::string& strategy,
                               FragmentId workers) {
  auto partitioner = MakePartitioner(strategy);
  EXPECT_TRUE(partitioner.ok()) << partitioner.status();
  auto assignment = (*partitioner)->Partition(g, workers);
  EXPECT_TRUE(assignment.ok()) << assignment.status();
  auto fg = FragmentBuilder::Build(g, *assignment, workers);
  EXPECT_TRUE(fg.ok()) << fg.status();
  return std::move(fg).value();
}

std::vector<uint8_t> EncodeFragment(const Fragment& frag) {
  Encoder enc;
  frag.EncodeTo(enc);
  return enc.TakeBuffer();
}

/// Field-by-field equivalence of a decoded fragment against the original,
/// through the public API a worker-side app actually uses.
void ExpectFragmentsEqual(const Fragment& a, const Fragment& b) {
  ASSERT_EQ(a.fid(), b.fid());
  ASSERT_EQ(a.num_fragments(), b.num_fragments());
  ASSERT_EQ(a.total_num_vertices(), b.total_num_vertices());
  ASSERT_EQ(a.is_directed(), b.is_directed());
  ASSERT_EQ(a.num_inner(), b.num_inner());
  ASSERT_EQ(a.num_outer(), b.num_outer());
  ASSERT_EQ(a.num_border(), b.num_border());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  ASSERT_EQ(a.gids(), b.gids());
  for (LocalId lid = 0; lid < a.num_local(); ++lid) {
    EXPECT_EQ(a.Gid(lid), b.Gid(lid));
    EXPECT_EQ(a.vertex_label(lid), b.vertex_label(lid));
    auto an = a.OutNeighbors(lid);
    auto bn = b.OutNeighbors(lid);
    ASSERT_EQ(an.size(), bn.size()) << "out-degree of lid " << lid;
    for (size_t k = 0; k < an.size(); ++k) {
      EXPECT_EQ(an[k].local, bn[k].local);
      EXPECT_EQ(an[k].weight, bn[k].weight);
      EXPECT_EQ(an[k].label, bn[k].label);
    }
    auto ain = a.InNeighbors(lid);
    auto bin = b.InNeighbors(lid);
    ASSERT_EQ(ain.size(), bin.size()) << "in-degree of lid " << lid;
    for (size_t k = 0; k < ain.size(); ++k) {
      EXPECT_EQ(ain[k].local, bin[k].local);
      EXPECT_EQ(ain[k].weight, bin[k].weight);
      EXPECT_EQ(ain[k].label, bin[k].label);
    }
    if (a.IsInner(lid)) {
      EXPECT_EQ(a.IsBorder(lid), b.IsBorder(lid));
      auto amf = a.MirrorFragments(lid);
      auto bmf = b.MirrorFragments(lid);
      auto aml = a.MirrorDstLids(lid);
      auto bml = b.MirrorDstLids(lid);
      ASSERT_EQ(amf.size(), bmf.size());
      for (size_t k = 0; k < amf.size(); ++k) {
        EXPECT_EQ(amf[k], bmf[k]);
        EXPECT_EQ(aml[k], bml[k]);
      }
    } else {
      EXPECT_EQ(a.OuterOwner(lid), b.OuterOwner(lid));
      EXPECT_EQ(a.OuterOwnerLid(lid), b.OuterOwnerLid(lid));
    }
  }
  // The gid -> lid indexer is rebuilt on decode; spot-check every vertex
  // plus an absent gid.
  for (LocalId lid = 0; lid < a.num_local(); ++lid) {
    EXPECT_EQ(b.Lid(a.Gid(lid)), lid);
  }
  EXPECT_EQ(b.Lid(a.total_num_vertices() + 17), kInvalidLocal);
  // Shared routing tables.
  for (VertexId gid = 0; gid < a.total_num_vertices(); ++gid) {
    EXPECT_EQ(a.OwnerOf(gid), b.OwnerOf(gid));
    EXPECT_EQ(a.LidAtOwner(gid), b.LidAtOwner(gid));
  }
}

void RoundTrip(const Fragment& frag) {
  std::vector<uint8_t> wire = EncodeFragment(frag);
  Decoder dec(wire);
  Fragment decoded;
  ASSERT_OK(Fragment::DecodeFrom(dec, &decoded));
  EXPECT_TRUE(dec.AtEnd()) << "decoder left trailing bytes";
  ExpectFragmentsEqual(frag, decoded);
}

TEST(FragmentCodecTest, GridHashFragmentsRoundTrip) {
  auto g = GenerateGridRoad(16, 16, 7);
  ASSERT_OK(g.status());
  FragmentedGraph fg = BuildFragments(*g, "hash", 4);
  for (const Fragment& frag : fg.fragments) RoundTrip(frag);
}

TEST(FragmentCodecTest, MirrorHeavyMetisCutRoundTrips) {
  // An RMat graph under METIS produces irregular cuts with long mirror
  // lists — the routing-plan tables that must survive the wire exactly.
  RMatOptions opts;
  opts.scale = 8;
  opts.edge_factor = 6;
  opts.seed = 71;
  auto g = GenerateRMat(opts);
  ASSERT_OK(g.status());
  FragmentedGraph fg = BuildFragments(*g, "metis", 7);
  size_t mirrors = 0;
  for (const Fragment& frag : fg.fragments) {
    for (LocalId lid = 0; lid < frag.num_inner(); ++lid) {
      mirrors += frag.MirrorFragments(lid).size();
    }
    RoundTrip(frag);
  }
  EXPECT_GT(mirrors, 0u) << "cut produced no mirrors; test is vacuous";
}

TEST(FragmentCodecTest, UndirectedFragmentsRoundTrip) {
  auto g = GenerateErdosRenyi(300, 900, /*directed=*/false, 73);
  ASSERT_OK(g.status());
  FragmentedGraph fg = BuildFragments(*g, "metis", 6);
  for (const Fragment& frag : fg.fragments) RoundTrip(frag);
}

TEST(FragmentCodecTest, SingleVertexAndEmptyFragmentsRoundTrip) {
  // Two vertices, one edge, three workers: one fragment is empty (no
  // inner vertices) and the others are near-degenerate.
  GraphBuilder builder(/*directed=*/true);
  builder.AddEdge(0, 1, 1.0);
  auto g = std::move(builder).Build();
  ASSERT_OK(g.status());
  std::vector<FragmentId> assignment = {0, 1};
  auto fg = FragmentBuilder::Build(*g, assignment, 3);
  ASSERT_OK(fg.status());
  ASSERT_EQ(fg->fragments.size(), 3u);
  EXPECT_EQ(fg->fragments[2].num_local(), 0u);
  for (const Fragment& frag : fg->fragments) RoundTrip(frag);
}

TEST(FragmentCodecTest, TruncationsAreRejectedEverywhere) {
  auto g = GenerateGridRoad(8, 8, 7);
  ASSERT_OK(g.status());
  FragmentedGraph fg = BuildFragments(*g, "metis", 3);
  std::vector<uint8_t> wire = EncodeFragment(fg.fragments[1]);

  // Every proper prefix must fail cleanly (sweep small buffers densely,
  // larger ones in strides to keep the test fast).
  for (size_t cut = 0; cut < wire.size();
       cut += (cut < 128 ? 1 : 97)) {
    Decoder dec(wire.data(), cut);
    Fragment out;
    Status s = Fragment::DecodeFrom(dec, &out);
    ASSERT_FALSE(s.ok()) << "accepted a " << cut << "-byte prefix of a "
                         << wire.size() << "-byte fragment";
    // A failed decode must not leave a partially-initialized fragment.
    EXPECT_EQ(out.num_local(), 0u);
    EXPECT_EQ(out.num_fragments(), 1u);
  }
}

TEST(FragmentCodecTest, CorruptCountsAndIdsAreRejected) {
  auto g = GenerateGridRoad(8, 8, 7);
  ASSERT_OK(g.status());
  FragmentedGraph fg = BuildFragments(*g, "metis", 3);
  const std::vector<uint8_t> wire = EncodeFragment(fg.fragments[0]);

  // Flip bytes all over the buffer. Every outcome must be either a clean
  // rejection or a fragment that still satisfies the decoder's own
  // invariants — never a crash, never trailing acceptance of garbage
  // counts. (A flip in e.g. an edge weight legitimately decodes.)
  Rng rng(0x5eedULL);
  for (int iter = 0; iter < 400; ++iter) {
    std::vector<uint8_t> bad = wire;
    const size_t at = rng.NextBounded(bad.size());
    bad[at] ^= static_cast<uint8_t>(1 + rng.NextBounded(255));
    Decoder dec(bad);
    Fragment out;
    Status s = Fragment::DecodeFrom(dec, &out);
    if (!s.ok()) {
      EXPECT_EQ(out.num_local(), 0u)
          << "rejected decode still wrote into the output fragment";
    }
  }

  // Targeted corruption: grow the gid-table count without supplying
  // data — the classic accepted-then-overread shape.
  {
    std::vector<uint8_t> bad = wire;
    // Layout: magic(4) version(4) fid(4) nfrag(4) total(4) directed(1)
    // num_inner(4) num_border(4), then varint gid count.
    const size_t count_at = 4 + 4 + 4 + 4 + 4 + 1 + 4 + 4;
    bad[count_at] = 0x7f;  // 127 gids claimed
    Decoder dec(bad);
    Fragment out;
    EXPECT_FALSE(Fragment::DecodeFrom(dec, &out).ok());
  }

  // Targeted corruption: out-of-range num_inner must be caught by
  // validation even though every vector decodes.
  {
    std::vector<uint8_t> bad = wire;
    const size_t num_inner_at = 4 + 4 + 4 + 4 + 4 + 1;
    bad[num_inner_at + 3] = 0x7f;  // enormous num_inner
    Decoder dec(bad);
    Fragment out;
    EXPECT_FALSE(Fragment::DecodeFrom(dec, &out).ok());
  }

  // Bad magic is rejected before anything else is read.
  {
    std::vector<uint8_t> bad = wire;
    bad[0] ^= 0xff;
    Decoder dec(bad);
    Fragment out;
    Status s = Fragment::DecodeFrom(dec, &out);
    ASSERT_FALSE(s.ok());
    EXPECT_TRUE(s.IsCorruption()) << s;
  }
}

TEST(FragmentCodecTest, DecoderStatusIsSticky) {
  // After a rejected fragment, the decoder position must not have been
  // advanced into a state where a retry "succeeds" on garbage: decoding
  // the same corrupt buffer twice fails twice.
  auto g = GenerateGridRoad(6, 6, 7);
  ASSERT_OK(g.status());
  FragmentedGraph fg = BuildFragments(*g, "hash", 2);
  std::vector<uint8_t> wire = EncodeFragment(fg.fragments[0]);
  wire.resize(wire.size() / 2);  // truncate
  Decoder dec(wire);
  Fragment out;
  ASSERT_FALSE(Fragment::DecodeFrom(dec, &out).ok());
  ASSERT_FALSE(Fragment::DecodeFrom(dec, &out).ok());
}

}  // namespace
}  // namespace grape
