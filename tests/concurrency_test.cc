#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "core/parallel.h"
#include "gtest/gtest.h"
#include "rt/comm_world.h"
#include "util/barrier.h"
#include "util/bitset.h"
#include "util/histogram.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace grape {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([&counter] { counter++; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversRange) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(0, 1000, [&hits](size_t i) { hits[i]++; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForEmptyRange) {
  ThreadPool pool(2);
  bool ran = false;
  pool.ParallelFor(5, 5, [&ran](size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPoolTest, ParallelForSingletonRange) {
  ThreadPool pool(4);
  std::atomic<int> hits{0};
  size_t seen = 0;
  pool.ParallelFor(7, 8, [&](size_t i) {
    seen = i;
    hits++;
  });
  EXPECT_EQ(hits.load(), 1);
  EXPECT_EQ(seen, 7u);
}

// The regression this PR fixes: ParallelFor called from inside a pool
// worker thread used to deadlock — the outer task blocked waiting for
// chunks that only the (fully occupied) pool could run. A 1-thread pool
// is the sharpest version: the single worker IS the caller, so unless
// the caller helps execute chunks itself, nothing ever runs them. The
// deadline turns the historical hang into a clean failure.
TEST(ThreadPoolTest, NestedParallelForInsideSubmitDoesNotDeadlock) {
  ThreadPool pool(1);
  std::vector<std::atomic<int>> hits(64);
  std::future<void> fut = pool.Submit([&] {
    pool.ParallelFor(0, hits.size(), [&hits](size_t i) { hits[i]++; });
  });
  ASSERT_EQ(fut.wait_for(std::chrono::seconds(30)),
            std::future_status::ready)
      << "nested ParallelFor deadlocked on a 1-thread pool";
  fut.get();
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForInsideParallelFor) {
  ThreadPool pool(2);
  std::vector<std::atomic<int>> hits(8 * 16);
  pool.ParallelFor(0, 8, [&](size_t outer) {
    pool.ParallelFor(0, 16, [&, outer](size_t inner) {
      hits[outer * 16 + inner]++;
    });
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, SubmitDuringParallelFor) {
  ThreadPool pool(2);
  std::atomic<int> submitted{0};
  std::vector<std::future<void>> futures;
  std::mutex mu;
  pool.ParallelFor(0, 100, [&](size_t i) {
    if (i % 10 == 0) {
      std::lock_guard<std::mutex> lock(mu);
      futures.push_back(pool.Submit([&submitted] { submitted++; }));
    }
  });
  for (auto& f : futures) f.get();
  EXPECT_EQ(submitted.load(), 10);
}

TEST(ThreadPoolTest, DestructionRunsQueuedWork) {
  std::atomic<int> ran{0};
  std::vector<std::future<void>> futures;
  {
    ThreadPool pool(1);
    for (int i = 0; i < 50; ++i) {
      futures.push_back(pool.Submit([&ran] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        ran++;
      }));
    }
    // Destructor joins after draining the queue: every future must be
    // satisfied — no task silently dropped.
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(ran.load(), 50);
}

TEST(BarrierTest, SynchronizesPhases) {
  constexpr size_t kThreads = 8;
  constexpr int kRounds = 50;
  Barrier barrier(kThreads);
  std::atomic<int> phase_count{0};
  std::atomic<bool> violation{false};

  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int r = 0; r < kRounds; ++r) {
        phase_count++;
        barrier.Wait();
        // After the barrier every thread of round r has incremented.
        if (phase_count.load() < (r + 1) * static_cast<int>(kThreads)) {
          violation = true;
        }
        barrier.Wait();
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_FALSE(violation.load());
  EXPECT_EQ(phase_count.load(), kRounds * static_cast<int>(kThreads));
}

TEST(BarrierTest, ExactlyOneSerialThread) {
  constexpr size_t kThreads = 6;
  Barrier barrier(kThreads);
  std::atomic<int> serial{0};
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      if (barrier.Wait()) serial++;
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(serial.load(), 1);
}

TEST(CommWorldTest, PointToPointDelivery) {
  CommWorld world(3);
  ASSERT_TRUE(world.Send(0, 2, kTagControl, {1, 2, 3}).ok());
  auto msg = world.TryRecv(2);
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->from, 0u);
  EXPECT_EQ(msg->tag, kTagControl);
  EXPECT_EQ(msg->payload.size(), 3u);
  EXPECT_FALSE(world.TryRecv(2).has_value());
}

TEST(CommWorldTest, FifoPerSender) {
  CommWorld world(2);
  for (uint8_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(world.Send(0, 1, kTagControl, {i}).ok());
  }
  for (uint8_t i = 0; i < 10; ++i) {
    auto msg = world.TryRecv(1);
    ASSERT_TRUE(msg.has_value());
    EXPECT_EQ(msg->payload[0], i);
  }
}

TEST(CommWorldTest, TagFilteredReceive) {
  CommWorld world(2);
  ASSERT_TRUE(world.Send(0, 1, kTagControl, {1}).ok());
  ASSERT_TRUE(world.Send(0, 1, kTagParamUpdate, {2}).ok());
  auto msg = world.TryRecv(1, kTagParamUpdate);
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->payload[0], 2);
  EXPECT_EQ(world.PendingCount(1), 1u);
}

TEST(CommWorldTest, RejectsBadRanks) {
  CommWorld world(2);
  EXPECT_TRUE(world.Send(0, 5, kTagControl, {}).IsInvalidArgument());
  EXPECT_TRUE(world.Send(9, 0, kTagControl, {}).IsInvalidArgument());
}

TEST(CommWorldTest, CountsBytesAndMessages) {
  CommWorld world(2);
  world.ResetStats();
  ASSERT_TRUE(world.Send(0, 1, kTagControl, std::vector<uint8_t>(100)).ok());
  ASSERT_TRUE(world.Send(1, 0, kTagControl, std::vector<uint8_t>(50)).ok());
  CommStats stats = world.stats();
  EXPECT_EQ(stats.messages, 2u);
  // 16-byte envelope per message.
  EXPECT_EQ(stats.bytes, 100u + 50u + 32u);
}

TEST(CommWorldTest, CrossThreadBlockingRecv) {
  CommWorld world(2);
  std::thread sender([&world] {
    world.Send(0, 1, kTagControl, {42});
  });
  Result<RtMessage> msg = world.Recv(1);
  ASSERT_TRUE(msg.ok());
  EXPECT_EQ(msg->payload[0], 42);
  sender.join();
}

TEST(CommWorldTest, DrainAllEmptiesMailbox) {
  CommWorld world(2);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(world.Send(0, 1, kTagControl, {}).ok());
  }
  auto all = world.DrainAll(1);
  EXPECT_EQ(all.size(), 5u);
  EXPECT_EQ(world.PendingCount(1), 0u);
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextUint64(), b.NextUint64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, NextIntInclusive) {
  Rng rng(9);
  bool hit_lo = false;
  bool hit_hi = false;
  for (int i = 0; i < 10000; ++i) {
    int64_t v = rng.NextInt(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    hit_lo |= (v == -2);
    hit_hi |= (v == 2);
  }
  EXPECT_TRUE(hit_lo);
  EXPECT_TRUE(hit_hi);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(13);
  double sum = 0;
  double sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double g = rng.NextGaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.1);
}

TEST(BitsetTest, SetResetTestCount) {
  Bitset bs(200);
  EXPECT_EQ(bs.Count(), 0u);
  bs.Set(0);
  bs.Set(63);
  bs.Set(64);
  bs.Set(199);
  EXPECT_TRUE(bs.Test(63));
  EXPECT_TRUE(bs.Test(64));
  EXPECT_FALSE(bs.Test(65));
  EXPECT_EQ(bs.Count(), 4u);
  bs.Reset(63);
  EXPECT_FALSE(bs.Test(63));
  EXPECT_EQ(bs.Count(), 3u);
}

TEST(BitsetTest, ForEachAscending) {
  Bitset bs(300);
  std::vector<size_t> expected = {3, 64, 65, 130, 299};
  for (size_t i : expected) bs.Set(i);
  std::vector<size_t> seen;
  bs.ForEach([&seen](size_t i) { seen.push_back(i); });
  EXPECT_EQ(seen, expected);
}

TEST(BitsetTest, ClearAndAny) {
  Bitset bs(100);
  EXPECT_FALSE(bs.Any());
  bs.Set(50);
  EXPECT_TRUE(bs.Any());
  bs.Clear();
  EXPECT_FALSE(bs.Any());
}

TEST(BitsetTest, SetAllMasksTailWord) {
  Bitset bs(70);  // 64 + 6: the second word must get only 6 bits
  bs.SetAll();
  EXPECT_EQ(bs.Count(), 70u);
  std::vector<size_t> seen;
  bs.ForEach([&seen](size_t i) { seen.push_back(i); });
  ASSERT_EQ(seen.size(), 70u);
  EXPECT_EQ(seen.front(), 0u);
  EXPECT_EQ(seen.back(), 69u);
}

TEST(BitsetTest, SetAtomicReportsFirstSetter) {
  Bitset bs(256);
  // Exactly one of N racing SetAtomic(i) calls must see "I flipped it".
  constexpr size_t kThreads = 8;
  std::vector<std::atomic<int>> winners(256);
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (size_t i = 0; i < 256; ++i) {
        if (bs.SetAtomic(i)) winners[i]++;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(bs.Count(), 256u);
  for (auto& w : winners) EXPECT_EQ(w.load(), 1);
}

TEST(FrontierTest, DenseSparseRoundTrip) {
  ThreadPool pool(2);
  ParallelContext par;
  par.Enable(&pool, 2);
  Frontier f;
  f.Reset(1000);
  // Sparse: 3 of 1000 members — well under the dense threshold.
  f.Add(5);
  f.Add(64);
  f.Add(999);
  f.Finalize();
  EXPECT_FALSE(f.empty());
  EXPECT_EQ(f.size(), 3u);
  std::vector<LocalId> seen;
  std::mutex mu;
  f.ForAll(par, [&](LocalId v) {
    std::lock_guard<std::mutex> lock(mu);
    seen.push_back(v);
  });
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(seen, (std::vector<LocalId>{5, 64, 999}));

  // Dense: every vertex a member.
  f.Reset(1000);
  f.FillAll();
  f.Finalize();
  EXPECT_EQ(f.size(), 1000u);
  std::atomic<size_t> hits{0};
  f.ForAll(par, [&](LocalId) { hits++; });
  EXPECT_EQ(hits.load(), 1000u);
}

TEST(ParallelContextTest, ForChunksCoversRangeWith64AlignedBounds) {
  ThreadPool pool(4);
  ParallelContext par;
  par.Enable(&pool, 4);
  std::vector<std::atomic<int>> hits(1000);
  std::atomic<bool> misaligned{false};
  par.ForChunks(1000, [&](size_t, size_t lo, size_t hi) {
    if (lo % 64 != 0) misaligned = true;
    for (size_t i = lo; i < hi; ++i) hits[i]++;
  });
  EXPECT_FALSE(misaligned.load());
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(HistogramTest, BasicStats) {
  Histogram h;
  for (uint64_t v = 1; v <= 100; ++v) h.Add(v);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.sum(), 5050u);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), 100u);
  EXPECT_DOUBLE_EQ(h.Mean(), 50.5);
  EXPECT_GT(h.Percentile(99), h.Percentile(50));
}

TEST(HistogramTest, MergeCombines) {
  Histogram a;
  Histogram b;
  a.Add(10);
  b.Add(1000);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.min(), 10u);
  EXPECT_EQ(a.max(), 1000u);
}

TEST(HistogramTest, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_DOUBLE_EQ(h.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.Percentile(99), 0.0);
}

}  // namespace
}  // namespace grape
