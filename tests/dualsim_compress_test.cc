#include <cstdio>
#include <filesystem>
#include <string>
#include <tuple>

#include "apps/dual_sim.h"
#include "apps/seq/seq_matching.h"
#include "core/engine.h"
#include "graph/generators.h"
#include "graph/io.h"
#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace grape {
namespace {

Graph LabeledData(uint64_t seed) {
  LabeledGraphOptions opts;
  opts.scale = 8;
  opts.edge_factor = 6;
  opts.num_vertex_labels = 3;
  opts.seed = seed;
  auto g = GenerateLabeledGraph(opts);
  EXPECT_TRUE(g.ok());
  return std::move(g).value();
}

Pattern MakePattern(const std::string& name) {
  Result<Pattern> p = Status::Internal("unset");
  if (name == "edge") {
    p = Pattern::Create({0, 1}, {{0, 1, 0}});
  } else if (name == "path3") {
    p = Pattern::Create({0, 1, 2}, {{0, 1, 0}, {1, 2, 0}});
  } else {
    p = Pattern::Create({0, 1, 2}, {{0, 1, 0}, {1, 2, 0}, {2, 0, 0}});
  }
  EXPECT_TRUE(p.ok());
  return std::move(p).value();
}

TEST(SeqDualSimTest, SubsetOfPlainSimulation) {
  Graph g = LabeledData(1301);
  Pattern pattern = MakePattern("path3");
  auto plain = SeqSimulation(g, pattern);
  auto dual = SeqDualSimulation(g, pattern);
  ASSERT_EQ(plain.size(), dual.size());
  for (uint32_t u = 0; u < pattern.num_vertices(); ++u) {
    // Dual simulation adds the parent condition: it can only shrink sets.
    for (VertexId v : dual[u]) {
      EXPECT_TRUE(std::binary_search(plain[u].begin(), plain[u].end(), v));
    }
  }
}

TEST(SeqDualSimTest, ParentConditionBites) {
  // Chain a -> b; pattern path3 with labels (0,1,2). Vertex with label 1
  // but no label-0 parent must be excluded by DUAL sim for position 1.
  GraphBuilder builder(true);
  builder.AddEdge(0, 1);  // 0:label0 -> 1:label1
  builder.AddEdge(1, 2);  // 1 -> 2:label2
  builder.AddEdge(3, 4);  // 3:label1 (no parent!) -> 4:label2
  builder.SetVertexLabel(0, 0);
  builder.SetVertexLabel(1, 1);
  builder.SetVertexLabel(2, 2);
  builder.SetVertexLabel(3, 1);
  builder.SetVertexLabel(4, 2);
  auto g = std::move(builder).Build();
  ASSERT_TRUE(g.ok());
  Pattern pattern = MakePattern("path3");

  auto plain = SeqSimulation(*g, pattern);
  auto dual = SeqDualSimulation(*g, pattern);
  // Plain simulation keeps 3 in sim(1) (child condition holds via 4).
  EXPECT_TRUE(std::binary_search(plain[1].begin(), plain[1].end(), 3u));
  // Dual simulation drops 3 (no label-0 parent) and its dependent 4.
  EXPECT_FALSE(std::binary_search(dual[1].begin(), dual[1].end(), 3u));
  EXPECT_FALSE(std::binary_search(dual[2].begin(), dual[2].end(), 4u));
  EXPECT_TRUE(std::binary_search(dual[1].begin(), dual[1].end(), 1u));
}

using DualParam = std::tuple<std::string, std::string, FragmentId>;

class DualSimMatrixTest : public ::testing::TestWithParam<DualParam> {};

TEST_P(DualSimMatrixTest, MatchesSequentialDualSimulation) {
  const auto& [pattern_name, strategy, nfrag] = GetParam();
  Graph g = LabeledData(1303);
  Pattern pattern = MakePattern(pattern_name);
  auto expected = SeqDualSimulation(g, pattern);

  FragmentedGraph fg = testing::MakeFragments(g, strategy, nfrag);
  GrapeEngine<DualSimApp> engine(fg, DualSimApp{});
  auto out = engine.Run(SimQuery{pattern});
  ASSERT_TRUE(out.ok()) << out.status();
  for (uint32_t u = 0; u < pattern.num_vertices(); ++u) {
    EXPECT_EQ(out->sim[u], expected[u]) << "pattern vertex " << u;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, DualSimMatrixTest,
    ::testing::Combine(::testing::Values("edge", "path3", "triangle"),
                       ::testing::Values("hash", "metis"),
                       ::testing::Values(FragmentId{1}, FragmentId{4},
                                         FragmentId{6})),
    [](const auto& info) {
      return std::get<0>(info.param) + "_" + std::get<1>(info.param) + "_" +
             std::to_string(std::get<2>(info.param));
    });

TEST(DualSimTest, MonotonicityHolds) {
  Graph g = LabeledData(1307);
  FragmentedGraph fg = testing::MakeFragments(g, "hash", 4);
  EngineOptions opts;
  opts.check_monotonicity = true;
  GrapeEngine<DualSimApp> engine(fg, DualSimApp{}, opts);
  ASSERT_TRUE(engine.Run(SimQuery{MakePattern("path3")}).ok());
  EXPECT_EQ(engine.metrics().monotonicity_violations, 0u);
}

class CompressedIoTest : public ::testing::Test {
 protected:
  std::string TempPath(const std::string& name) {
    return ::testing::TempDir() + "/grape_cz_" + name;
  }
};

TEST_F(CompressedIoTest, RoundTripEquality) {
  Graph g = LabeledData(1319);
  std::string path = TempPath("graph.czg");
  ASSERT_TRUE(SaveBinaryCompressed(g, path).ok());
  auto loaded = LoadBinaryCompressed(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->num_vertices(), g.num_vertices());
  EXPECT_EQ(loaded->num_edges(), g.num_edges());
  auto full_order = [](const Edge& x, const Edge& y) {
    return std::tie(x.src, x.dst, x.weight, x.label) <
           std::tie(y.src, y.dst, y.weight, y.label);
  };
  auto ea = g.ToEdgeList();
  auto eb = loaded->ToEdgeList();
  std::sort(ea.begin(), ea.end(), full_order);
  std::sort(eb.begin(), eb.end(), full_order);
  ASSERT_EQ(ea.size(), eb.size());
  for (size_t i = 0; i < ea.size(); ++i) EXPECT_EQ(ea[i], eb[i]);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(loaded->vertex_label(v), g.vertex_label(v));
  }
  std::remove(path.c_str());
}

TEST_F(CompressedIoTest, UndirectedRoundTrip) {
  auto g = GenerateGridRoad(20, 20, 1321);
  ASSERT_TRUE(g.ok());
  std::string path = TempPath("grid.czg");
  ASSERT_TRUE(SaveBinaryCompressed(*g, path).ok());
  auto loaded = LoadBinaryCompressed(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_edges(), g->num_edges());
  for (VertexId v = 0; v < g->num_vertices(); ++v) {
    EXPECT_EQ(loaded->OutDegree(v), g->OutDegree(v));
  }
  std::remove(path.c_str());
}

TEST_F(CompressedIoTest, SmallerThanUncompressed) {
  Graph g = LabeledData(1327);
  std::string raw = TempPath("raw.bin");
  std::string packed = TempPath("packed.czg");
  ASSERT_TRUE(SaveBinary(g, raw).ok());
  ASSERT_TRUE(SaveBinaryCompressed(g, packed).ok());
  auto raw_size = std::filesystem::file_size(raw);
  auto packed_size = std::filesystem::file_size(packed);
  EXPECT_LT(packed_size * 2, raw_size)
      << "compression should at least halve the snapshot";
  std::remove(raw.c_str());
  std::remove(packed.c_str());
}

TEST_F(CompressedIoTest, NonGridWeightsFallBackLosslessly) {
  GraphBuilder builder(true);
  builder.AddEdge(0, 1, 0.123456789);  // not on the 0.1 grid
  builder.AddEdge(1, 2, 3.14159265);
  auto g = std::move(builder).Build();
  ASSERT_TRUE(g.ok());
  std::string path = TempPath("irr.czg");
  ASSERT_TRUE(SaveBinaryCompressed(*g, path).ok());
  auto loaded = LoadBinaryCompressed(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_DOUBLE_EQ(loaded->OutNeighbors(0)[0].weight, 0.123456789);
  EXPECT_DOUBLE_EQ(loaded->OutNeighbors(1)[0].weight, 3.14159265);
  std::remove(path.c_str());
}

TEST_F(CompressedIoTest, RejectsWrongMagic) {
  Graph g = LabeledData(1361);
  std::string path = TempPath("mix.bin");
  ASSERT_TRUE(SaveBinary(g, path).ok());
  // A plain binary is not a compressed one.
  EXPECT_FALSE(LoadBinaryCompressed(path).ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace grape
