#include <algorithm>

#include "graph/graph.h"
#include "graph/id_indexer.h"
#include "gtest/gtest.h"

namespace grape {
namespace {

TEST(GraphBuilderTest, DirectedCsr) {
  GraphBuilder builder(/*directed=*/true);
  builder.AddEdge(0, 1, 2.0);
  builder.AddEdge(0, 2, 3.0);
  builder.AddEdge(2, 1, 1.0);
  auto g = std::move(builder).Build();
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_vertices(), 3u);
  EXPECT_EQ(g->num_edges(), 3u);
  EXPECT_TRUE(g->is_directed());
  EXPECT_EQ(g->OutDegree(0), 2u);
  EXPECT_EQ(g->OutDegree(1), 0u);
  EXPECT_EQ(g->InDegree(1), 2u);
  auto out0 = g->OutNeighbors(0);
  ASSERT_EQ(out0.size(), 2u);
  EXPECT_EQ(out0[0].vertex, 1u);  // sorted by target
  EXPECT_EQ(out0[1].vertex, 2u);
  EXPECT_DOUBLE_EQ(out0[0].weight, 2.0);
}

TEST(GraphBuilderTest, UndirectedMirrorsEdges) {
  GraphBuilder builder(/*directed=*/false);
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 2);
  auto g = std::move(builder).Build();
  ASSERT_TRUE(g.ok());
  EXPECT_FALSE(g->is_directed());
  EXPECT_EQ(g->num_edges(), 4u);  // stored arcs
  EXPECT_EQ(g->OutDegree(1), 2u);
  EXPECT_EQ(g->InNeighbors(1).size(), 2u);  // aliases OutNeighbors
}

TEST(GraphBuilderTest, IsolatedVertices) {
  GraphBuilder builder(true);
  builder.AddEdge(0, 1);
  builder.AddVertex(5);
  auto g = std::move(builder).Build();
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_vertices(), 6u);
  EXPECT_EQ(g->OutDegree(5), 0u);
}

TEST(GraphBuilderTest, ExplicitVertexCountValidated) {
  GraphBuilder builder(true);
  builder.AddEdge(0, 9);
  auto g = std::move(builder).Build(5);
  EXPECT_FALSE(g.ok());
  EXPECT_TRUE(g.status().IsInvalidArgument());
}

TEST(GraphBuilderTest, ExplicitVertexCountPadsIsolated) {
  GraphBuilder builder(true);
  builder.AddEdge(0, 1);
  auto g = std::move(builder).Build(10);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_vertices(), 10u);
}

TEST(GraphBuilderTest, VertexLabels) {
  GraphBuilder builder(true);
  builder.AddEdge(0, 1);
  builder.SetVertexLabel(1, 42);
  auto g = std::move(builder).Build();
  ASSERT_TRUE(g.ok());
  EXPECT_TRUE(g->has_vertex_labels());
  EXPECT_EQ(g->vertex_label(0), 0u);
  EXPECT_EQ(g->vertex_label(1), 42u);
}

TEST(GraphBuilderTest, EdgeLabels) {
  GraphBuilder builder(true);
  builder.AddEdge(0, 1, 1.0, 7);
  auto g = std::move(builder).Build();
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->OutNeighbors(0)[0].label, 7u);
}

TEST(GraphTest, ToEdgeListDirected) {
  GraphBuilder builder(true);
  builder.AddEdge(1, 0, 5.0, 2);
  builder.AddEdge(0, 1, 3.0, 1);
  auto g = std::move(builder).Build();
  ASSERT_TRUE(g.ok());
  auto edges = g->ToEdgeList();
  ASSERT_EQ(edges.size(), 2u);
  EXPECT_EQ(edges[0], (Edge{0, 1, 3.0, 1}));
  EXPECT_EQ(edges[1], (Edge{1, 0, 5.0, 2}));
}

TEST(GraphTest, ToEdgeListUndirectedEmitsOnce) {
  GraphBuilder builder(false);
  builder.AddEdge(0, 1);
  builder.AddEdge(2, 1);
  auto g = std::move(builder).Build();
  ASSERT_TRUE(g.ok());
  auto edges = g->ToEdgeList();
  EXPECT_EQ(edges.size(), 2u);
}

TEST(GraphTest, TotalEdgeWeight) {
  GraphBuilder builder(true);
  builder.AddEdge(0, 1, 2.0);
  builder.AddEdge(1, 0, 3.0);
  auto g = std::move(builder).Build();
  ASSERT_TRUE(g.ok());
  EXPECT_DOUBLE_EQ(g->TotalEdgeWeight(), 5.0);
}

TEST(GraphTest, EmptyGraph) {
  GraphBuilder builder(true);
  auto g = std::move(builder).Build();
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_vertices(), 0u);
  EXPECT_EQ(g->num_edges(), 0u);
}

TEST(IdIndexerTest, InsertAndLookup) {
  IdIndexer idx;
  EXPECT_EQ(idx.GetOrInsert(100), 0u);
  EXPECT_EQ(idx.GetOrInsert(50), 1u);
  EXPECT_EQ(idx.GetOrInsert(100), 0u);  // idempotent
  EXPECT_EQ(idx.size(), 2u);
  EXPECT_EQ(idx.Find(50), 1u);
  EXPECT_EQ(idx.Find(999), kInvalidLocal);
  EXPECT_EQ(idx.GidOf(0), 100u);
  EXPECT_TRUE(idx.Contains(50));
  EXPECT_FALSE(idx.Contains(51));
}

}  // namespace
}  // namespace grape
