// Determinism golden for intra-fragment frontier parallelism
// (EngineOptions::compute_threads): for every ported app the parallel
// PEval/IncEval variants must be *bit-identical* to the sequential oracle
// — same output hash, same message count, same bytes on the wire, same
// superstep count — at every thread count, on both compute placements.
//
// This is the contract that lets compute_threads be a pure performance
// knob: nothing observable may move. SSSP and CC get it from unique
// min fixed points (atomic CAS-min over exact candidates) plus
// ascending-lid bitset iteration of the changed set; PageRank from
// disjoint 64-aligned chunks with adjacency-order sums and a sequential
// lid-order residual fold. The staging merge in WorkerCore::Flush
// reassembles per-chunk message lanes in chunk-index order, reproducing
// the sequential byte stream exactly.

#include <cstdint>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "tests/message_path_scenarios.h"

namespace grape {
namespace {

using testing::MessagePathObservation;
using testing::RunMessagePathScenario;

struct ParallelCase {
  const char* app;
  const char* graph;
  const char* strategy;
  FragmentId workers;
};

const std::vector<ParallelCase>& Cases() {
  static const std::vector<ParallelCase> kCases = {
      {"sssp", "grid", "hash", 4},
      {"sssp", "rmat", "metis", 3},
      {"cc", "er", "hash", 4},
      {"pagerank", "rmat", "metis", 3},
  };
  return kCases;
}

void ExpectIdentical(const MessagePathObservation& base,
                     const MessagePathObservation& got,
                     const std::string& what) {
  EXPECT_EQ(base.output_hash, got.output_hash) << what << ": output bits";
  EXPECT_EQ(base.messages, got.messages) << what << ": message count";
  EXPECT_EQ(base.bytes, got.bytes) << what << ": bytes on the wire";
  EXPECT_EQ(base.supersteps, got.supersteps) << what << ": supersteps";
}

TEST(ParallelComputeTest, LocalBitIdenticalAcrossThreadCounts) {
  for (const ParallelCase& c : Cases()) {
    // compute_threads=0 (unset) is the sequential oracle.
    MessagePathObservation oracle = RunMessagePathScenario(
        c.app, c.graph, c.strategy, c.workers, "inproc", "local", 0);
    // compute_threads=1 must take the sequential path too, untouched.
    ExpectIdentical(oracle,
                    RunMessagePathScenario(c.app, c.graph, c.strategy,
                                           c.workers, "inproc", "local", 1),
                    std::string(c.app) + " local threads=1");
    for (uint32_t threads : {2u, 4u, 8u}) {
      ExpectIdentical(
          oracle,
          RunMessagePathScenario(c.app, c.graph, c.strategy, c.workers,
                                 "inproc", "local", threads),
          std::string(c.app) + " local threads=" + std::to_string(threads));
    }
  }
}

TEST(ParallelComputeTest, RemoteBitIdenticalAcrossThreadCounts) {
  for (const ParallelCase& c : Cases()) {
    MessagePathObservation oracle = RunMessagePathScenario(
        c.app, c.graph, c.strategy, c.workers, "inproc", "remote", 0);
    for (uint32_t threads : {2u, 4u, 8u}) {
      ExpectIdentical(
          oracle,
          RunMessagePathScenario(c.app, c.graph, c.strategy, c.workers,
                                 "inproc", "remote", threads),
          std::string(c.app) + " remote threads=" + std::to_string(threads));
    }
  }
}

// Placement cross-check: the parallel local run must also match the
// parallel remote run (not just each matching its own oracle) — the
// worker protocol's compute_threads plumbing must not perturb frames.
TEST(ParallelComputeTest, LocalAndRemoteAgreeWhenParallel) {
  for (const ParallelCase& c : Cases()) {
    MessagePathObservation local = RunMessagePathScenario(
        c.app, c.graph, c.strategy, c.workers, "inproc", "local", 4);
    MessagePathObservation remote = RunMessagePathScenario(
        c.app, c.graph, c.strategy, c.workers, "inproc", "remote", 4);
    ExpectIdentical(local, remote,
                    std::string(c.app) + " local-vs-remote threads=4");
  }
}

// One forked-process spot check: compute_threads rides the wire inside
// the load frame, so a socket worker must decode it and still reproduce
// the sequential observables.
TEST(ParallelComputeTest, SocketRemoteSpotCheck) {
  MessagePathObservation oracle = RunMessagePathScenario(
      "sssp", "grid", "hash", 4, "socket", "remote", 0);
  ExpectIdentical(
      oracle,
      RunMessagePathScenario("sssp", "grid", "hash", 4, "socket", "remote", 4),
      "sssp socket remote threads=4");
}

}  // namespace
}  // namespace grape
