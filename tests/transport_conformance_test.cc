// Differential conformance suite for Transport backends: every test runs
// against all three — "inproc" (CommWorld), "socket" (SocketTransport,
// forked endpoint processes + AF_UNIX frames), and "tcp" (TcpTransport,
// endpoint processes full-meshed over TCP). The suite IS the Transport
// contract — FIFO per channel, tag filtering, concurrent senders, large
// and empty payloads, drain semantics, the Flush delivery barrier
// (including barriers interleaved across ranks and racing Close),
// TryRecv liveness under saturation, Close-wakes-receivers, and
// backend-identical CommStats. A backend that passes here is safe to
// plug under the engine; the end-to-end guarantee (bit-identical outputs
// and counters) is frozen separately by tests/message_path_golden_test.cc.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "rt/transport.h"
#include "util/status.h"

namespace grape {
namespace {

class TransportConformanceTest
    : public ::testing::TestWithParam<std::string> {
 protected:
  std::unique_ptr<Transport> Make(uint32_t size) {
    auto t = MakeTransport(GetParam(), size);
    EXPECT_TRUE(t.ok()) << t.status();
    return std::move(t).value();
  }
};

TEST_P(TransportConformanceTest, ReportsNameAndSize) {
  auto t = Make(3);
  EXPECT_EQ(t->name(), GetParam());
  EXPECT_EQ(t->size(), 3u);
}

TEST_P(TransportConformanceTest, PointToPointDelivery) {
  auto t = Make(3);
  ASSERT_TRUE(t->Send(0, 2, kTagControl, {1, 2, 3}).ok());
  ASSERT_TRUE(t->Flush().ok());
  auto msg = t->TryRecv(2);
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->from, 0u);
  EXPECT_EQ(msg->to, 2u);
  EXPECT_EQ(msg->tag, kTagControl);
  EXPECT_EQ(msg->payload, (std::vector<uint8_t>{1, 2, 3}));
  EXPECT_FALSE(t->TryRecv(2).has_value());
  EXPECT_FALSE(t->TryRecv(0).has_value());
}

TEST_P(TransportConformanceTest, FifoPerChannel) {
  auto t = Make(2);
  for (uint32_t i = 0; i < 200; ++i) {
    std::vector<uint8_t> payload = {static_cast<uint8_t>(i),
                                    static_cast<uint8_t>(i >> 8)};
    ASSERT_TRUE(t->Send(0, 1, kTagControl, std::move(payload)).ok());
  }
  ASSERT_TRUE(t->Flush().ok());
  for (uint32_t i = 0; i < 200; ++i) {
    auto msg = t->TryRecv(1);
    ASSERT_TRUE(msg.has_value()) << "message " << i << " missing";
    uint32_t seq = msg->payload[0] | (msg->payload[1] << 8);
    EXPECT_EQ(seq, i) << "FIFO order violated";
  }
}

TEST_P(TransportConformanceTest, TagFilteredReceive) {
  auto t = Make(2);
  ASSERT_TRUE(t->Send(0, 1, kTagControl, {1}).ok());
  ASSERT_TRUE(t->Send(0, 1, kTagParamUpdate, {2}).ok());
  ASSERT_TRUE(t->Send(0, 1, kTagControl, {3}).ok());
  ASSERT_TRUE(t->Flush().ok());
  auto msg = t->TryRecv(1, kTagParamUpdate);
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->payload[0], 2);
  EXPECT_FALSE(t->TryRecv(1, kTagParamUpdate).has_value());
  // Filtering must not disturb the order of what remains.
  EXPECT_EQ(t->PendingCount(1), 2u);
  EXPECT_EQ(t->TryRecv(1, kTagControl)->payload[0], 1);
  EXPECT_EQ(t->TryRecv(1)->payload[0], 3);
}

TEST_P(TransportConformanceTest, ConcurrentSendersKeepPerChannelFifo) {
  constexpr uint32_t kSenders = 4;
  constexpr uint32_t kPerSender = 100;
  auto t = Make(kSenders + 1);
  std::vector<std::thread> senders;
  for (uint32_t s = 1; s <= kSenders; ++s) {
    senders.emplace_back([&t, s] {
      for (uint32_t i = 0; i < kPerSender; ++i) {
        std::vector<uint8_t> payload = {static_cast<uint8_t>(s),
                                        static_cast<uint8_t>(i),
                                        static_cast<uint8_t>(i >> 8)};
        ASSERT_TRUE(t->Send(s, 0, kTagParamUpdate, std::move(payload)).ok());
      }
    });
  }
  for (auto& th : senders) th.join();
  ASSERT_TRUE(t->Flush().ok());
  ASSERT_EQ(t->PendingCount(0), kSenders * kPerSender);
  // Interleaving across channels is unspecified; within one sender's
  // channel the sequence numbers must arrive in order.
  std::map<uint8_t, uint32_t> next;
  while (auto msg = t->TryRecv(0)) {
    uint8_t s = msg->payload[0];
    uint32_t seq = msg->payload[1] | (msg->payload[2] << 8);
    EXPECT_EQ(seq, next[s]) << "channel " << int(s) << " reordered";
    next[s] = seq + 1;
    EXPECT_EQ(msg->from, s);
  }
  for (uint32_t s = 1; s <= kSenders; ++s) {
    EXPECT_EQ(next[static_cast<uint8_t>(s)], kPerSender);
  }
}

TEST_P(TransportConformanceTest, LargePayloadRoundTripsByteIdentical) {
  auto t = Make(2);
  // Several multiples of the kernel socket buffer, exercising chunked
  // relay through the endpoint process.
  std::vector<uint8_t> payload(4 * 1024 * 1024);
  for (size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<uint8_t>((i * 2654435761u) >> 13);
  }
  std::vector<uint8_t> expected = payload;
  ASSERT_TRUE(t->Send(1, 0, kTagPartialResult, std::move(payload)).ok());
  ASSERT_TRUE(t->Flush().ok());
  auto msg = t->TryRecv(0);
  ASSERT_TRUE(msg.has_value());
  EXPECT_TRUE(msg->payload == expected);
}

TEST_P(TransportConformanceTest, EmptyPayloadIsDelivered) {
  auto t = Make(2);
  ASSERT_TRUE(t->Send(0, 1, kTagControl, {}).ok());
  ASSERT_TRUE(t->Flush().ok());
  auto msg = t->TryRecv(1);
  ASSERT_TRUE(msg.has_value());
  EXPECT_TRUE(msg->payload.empty());
  EXPECT_EQ(msg->tag, kTagControl);
}

TEST_P(TransportConformanceTest, SelfSendWorks) {
  auto t = Make(2);
  ASSERT_TRUE(t->Send(1, 1, kTagControl, {7}).ok());
  ASSERT_TRUE(t->Flush().ok());
  auto msg = t->TryRecv(1);
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->from, 1u);
  EXPECT_EQ(msg->payload[0], 7);
}

TEST_P(TransportConformanceTest, DrainAllReturnsDeliveryOrderAndEmpties) {
  auto t = Make(2);
  for (uint8_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(t->Send(0, 1, kTagControl, {i}).ok());
  }
  ASSERT_TRUE(t->Flush().ok());
  auto all = t->DrainAll(1);
  ASSERT_EQ(all.size(), 5u);
  for (uint8_t i = 0; i < 5; ++i) EXPECT_EQ(all[i].payload[0], i);
  EXPECT_EQ(t->PendingCount(1), 0u);
  EXPECT_TRUE(t->DrainAll(1).empty());
}

TEST_P(TransportConformanceTest, FlushIsTheVisibilityBarrier) {
  auto t = Make(2);
  for (int i = 0; i < 32; ++i) {
    ASSERT_TRUE(t->Send(0, 1, kTagParamUpdate, {static_cast<uint8_t>(i)}).ok());
  }
  ASSERT_TRUE(t->Flush().ok());
  EXPECT_EQ(t->PendingCount(1), 32u);
  // Idempotent with nothing in flight.
  ASSERT_TRUE(t->Flush().ok());
  ASSERT_TRUE(t->Flush().ok());
  EXPECT_EQ(t->PendingCount(1), 32u);
}

TEST_P(TransportConformanceTest, BlockingRecvGetsCrossThreadMessage) {
  auto t = Make(2);
  std::thread sender([&t] {
    ASSERT_TRUE(t->Send(0, 1, kTagControl, {42}).ok());
    ASSERT_TRUE(t->Flush().ok());
  });
  auto msg = t->Recv(1);
  ASSERT_TRUE(msg.ok()) << msg.status();
  EXPECT_EQ(msg->payload[0], 42);
  sender.join();
}

TEST_P(TransportConformanceTest, CloseWakesBlockedReceiversWithCancelled) {
  auto t = Make(3);
  std::atomic<int> cancelled{0};
  std::vector<std::thread> receivers;
  for (uint32_t r = 0; r < 3; ++r) {
    receivers.emplace_back([&t, &cancelled, r] {
      auto msg = t->Recv(r);
      if (!msg.ok() && msg.status().IsCancelled()) cancelled++;
    });
  }
  // Let the receivers block, then shut down.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  t->Close();
  for (auto& th : receivers) th.join();
  EXPECT_EQ(cancelled.load(), 3);
  EXPECT_TRUE(t->Send(0, 1, kTagControl, {1}).IsCancelled());
}

TEST_P(TransportConformanceTest, MessagesSurviveClose) {
  auto t = Make(2);
  ASSERT_TRUE(t->Send(0, 1, kTagControl, {9}).ok());
  ASSERT_TRUE(t->Flush().ok());
  t->Close();
  auto msg = t->TryRecv(1);
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->payload[0], 9);
}

TEST_P(TransportConformanceTest, RejectsBadRanks) {
  auto t = Make(2);
  EXPECT_TRUE(t->Send(0, 5, kTagControl, {}).IsInvalidArgument());
  EXPECT_TRUE(t->Send(9, 0, kTagControl, {}).IsInvalidArgument());
}

TEST_P(TransportConformanceTest, StatsCountIdenticallyAcrossBackends) {
  auto t = Make(2);
  t->ResetStats();
  ASSERT_TRUE(t->Send(0, 1, kTagControl, std::vector<uint8_t>(100)).ok());
  ASSERT_TRUE(t->Send(1, 0, kTagControl, std::vector<uint8_t>(50)).ok());
  ASSERT_TRUE(t->Flush().ok());
  CommStats stats = t->stats();
  EXPECT_EQ(stats.messages, 2u);
  // 16-byte envelope per message, on every backend.
  EXPECT_EQ(stats.bytes, 100u + 50u + 32u);
  t->ResetStats();
  EXPECT_EQ(t->stats().messages, 0u);
  EXPECT_EQ(t->stats().bytes, 0u);
}

TEST_P(TransportConformanceTest, BufferPoolRecyclesAcrossSendAndRecv) {
  auto t = Make(2);
  BufferPool& pool = t->buffer_pool();
  for (int round = 0; round < 4; ++round) {
    std::vector<uint8_t> buf = pool.Acquire();
    buf.clear();  // recycled buffers keep their old size; adopt like Encoder
    buf.resize(1024, static_cast<uint8_t>(round));
    ASSERT_TRUE(t->Send(0, 1, kTagParamUpdate, std::move(buf)).ok());
    ASSERT_TRUE(t->Flush().ok());
    auto msg = t->TryRecv(1);
    ASSERT_TRUE(msg.has_value());
    ASSERT_EQ(msg->payload.size(), 1024u);
    EXPECT_EQ(msg->payload[17], static_cast<uint8_t>(round));
    pool.Release(std::move(msg->payload));
  }
  // After a full cycle at least one buffer must be parked in the pool
  // (sender-side release for socket, receiver-side release everywhere).
  EXPECT_GT(pool.pooled(), 0u);
}

TEST_P(TransportConformanceTest, ManySmallMessagesAcrossAllRanks) {
  constexpr uint32_t kRanks = 5;
  auto t = Make(kRanks);
  uint32_t sent = 0;
  for (uint32_t from = 0; from < kRanks; ++from) {
    for (uint32_t to = 0; to < kRanks; ++to) {
      for (uint8_t k = 0; k < 3; ++k) {
        ASSERT_TRUE(t->Send(from, to, kTagParamUpdate,
                            {static_cast<uint8_t>(from),
                             static_cast<uint8_t>(to), k})
                        .ok());
        ++sent;
      }
    }
  }
  ASSERT_TRUE(t->Flush().ok());
  uint32_t received = 0;
  for (uint32_t to = 0; to < kRanks; ++to) {
    for (auto& msg : t->DrainAll(to)) {
      EXPECT_EQ(msg.payload[1], to);
      EXPECT_EQ(msg.payload[0], msg.from);
      ++received;
    }
  }
  EXPECT_EQ(received, sent);
  EXPECT_EQ(t->stats().messages, sent);
}

// Several ranks flushing concurrently: Flush is one global barrier, so a
// rank's Flush may also wait out other ranks' traffic — but when it
// returns OK, that rank's own previously-returned Sends must all be
// visible, every round, regardless of how the barriers interleave.
TEST_P(TransportConformanceTest, InterleavedFlushBarriersFromMultipleRanks) {
  constexpr uint32_t kRanks = 4;
  constexpr uint32_t kRounds = 8;
  constexpr uint32_t kPerRound = 25;
  auto t = Make(kRanks);
  std::vector<std::thread> ranks;
  for (uint32_t s = 0; s < kRanks; ++s) {
    ranks.emplace_back([&t, s] {
      // Only rank s targets mailbox s, so visibility is exactly countable.
      const uint32_t from = (s + 1) % kRanks;
      for (uint32_t round = 0; round < kRounds; ++round) {
        for (uint32_t i = 0; i < kPerRound; ++i) {
          const uint32_t seq = round * kPerRound + i;
          ASSERT_TRUE(t->Send(from, s, kTagParamUpdate,
                              {static_cast<uint8_t>(seq),
                               static_cast<uint8_t>(seq >> 8)})
                          .ok());
        }
        ASSERT_TRUE(t->Flush().ok()) << "rank " << s << " round " << round;
        EXPECT_EQ(t->PendingCount(s), (round + 1) * kPerRound)
            << "rank " << s << "'s barrier returned before its own sends "
            << "were visible (round " << round << ")";
      }
    });
  }
  for (auto& th : ranks) th.join();
  for (uint32_t s = 0; s < kRanks; ++s) {
    uint32_t expect = 0;
    while (auto msg = t->TryRecv(s)) {
      const uint32_t seq = msg->payload[0] | (msg->payload[1] << 8);
      EXPECT_EQ(seq, expect++) << "rank " << s << " reordered";
    }
    EXPECT_EQ(expect, kRounds * kPerRound);
  }
}

// A peer saturating one channel must not starve anything: the flooded
// mailbox's TryRecv keeps yielding in FIFO order, a tag-filtered receive
// still finds its message behind the flood, and an idle rank's TryRecv
// stays non-blocking throughout.
TEST_P(TransportConformanceTest, TryRecvStarvationUnderSaturatedPeer) {
  constexpr uint32_t kFlood = 2000;
  auto t = Make(4);
  std::thread flooder([&t] {
    for (uint32_t i = 0; i < kFlood; ++i) {
      ASSERT_TRUE(t->Send(0, 1, kTagParamUpdate,
                          {static_cast<uint8_t>(i),
                           static_cast<uint8_t>(i >> 8)})
                      .ok());
    }
    ASSERT_TRUE(t->Flush().ok());
  });
  ASSERT_TRUE(t->Send(2, 1, kTagControl, {0xee}).ok());
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  // The control message must surface through the flood by tag.
  for (;;) {
    if (auto ctl = t->TryRecv(1, kTagControl)) {
      EXPECT_EQ(ctl->payload[0], 0xee);
      break;
    }
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "tag-filtered TryRecv starved by a saturated channel";
    std::this_thread::yield();
  }
  // Consume the flood concurrently with its production; FIFO must hold.
  uint32_t got = 0;
  while (got < kFlood) {
    auto msg = t->TryRecv(1);
    if (!msg.has_value()) {
      ASSERT_LT(std::chrono::steady_clock::now(), deadline)
          << "TryRecv starved: " << got << " of " << kFlood << " received";
      std::this_thread::yield();
      continue;
    }
    const uint32_t seq = msg->payload[0] | (msg->payload[1] << 8);
    EXPECT_EQ(seq, got) << "flooded channel reordered";
    ++got;
    // An idle rank's TryRecv stays non-blocking and empty under load.
    EXPECT_FALSE(t->TryRecv(3).has_value());
  }
  flooder.join();
}

// Two ranks exchanging far more than a socket buffer of data in BOTH
// directions before any barrier. A substrate that relays with blocking
// peer-to-peer writes and no read servicing deadlocks here: each side's
// outbound fills the other's unread receive window (the classic
// full-duplex pipe deadlock), so this case is the liveness gate for
// mesh-topology backends.
TEST_P(TransportConformanceTest, BidirectionalBulkExchangeDoesNotDeadlock) {
  constexpr size_t kMsgBytes = 256 * 1024;
  constexpr uint32_t kEach = 24;  // ~6MB per direction
  auto t = Make(3);
  auto exchanged = std::async(std::launch::async, [&t] {
    std::thread ab([&t] {
      for (uint32_t i = 0; i < kEach; ++i) {
        ASSERT_TRUE(t->Send(1, 2, kTagParamUpdate,
                            std::vector<uint8_t>(kMsgBytes,
                                                 static_cast<uint8_t>(i)))
                        .ok());
      }
    });
    std::thread ba([&t] {
      for (uint32_t i = 0; i < kEach; ++i) {
        ASSERT_TRUE(t->Send(2, 1, kTagParamUpdate,
                            std::vector<uint8_t>(kMsgBytes,
                                                 static_cast<uint8_t>(i)))
                        .ok());
      }
    });
    ab.join();
    ba.join();
    return t->Flush();
  });
  if (exchanged.wait_for(std::chrono::seconds(120)) !=
      std::future_status::ready) {
    // The workers are wedged and cannot be joined (the future's
    // destructor would block forever) — fail fast and loudly instead of
    // sitting out the ctest timeout.
    ADD_FAILURE() << "bidirectional bulk exchange deadlocked the substrate";
    std::fflush(nullptr);
    std::abort();
  }
  ASSERT_TRUE(exchanged.get().ok());
  for (uint32_t rank : {1u, 2u}) {
    uint32_t next = 0;
    while (auto msg = t->TryRecv(rank)) {
      ASSERT_EQ(msg->payload.size(), kMsgBytes);
      EXPECT_EQ(msg->payload[0], static_cast<uint8_t>(next++))
          << "rank " << rank;
    }
    EXPECT_EQ(next, kEach) << "rank " << rank << " lost messages";
  }
}

// Close racing a Flush with traffic in flight: the barrier must return —
// OK or a Status, never a hang — and the transport must be cleanly
// closed afterwards.
TEST_P(TransportConformanceTest, CloseWhileFlushInFlight) {
  for (int round = 0; round < 5; ++round) {
    auto t = Make(2);
    // Enough bytes that asynchronous backends genuinely have frames in
    // flight when Close lands.
    for (int i = 0; i < 64; ++i) {
      ASSERT_TRUE(
          t->Send(0, 1, kTagParamUpdate, std::vector<uint8_t>(64 * 1024))
              .ok());
    }
    auto flushed = std::async(std::launch::async, [&t] { return t->Flush(); });
    t->Close();
    if (flushed.wait_for(std::chrono::seconds(60)) !=
        std::future_status::ready) {
      // See BidirectionalBulkExchangeDoesNotDeadlock: a wedged Flush
      // cannot be joined, so fail fast instead of wedging the binary.
      ADD_FAILURE() << "Flush hung across a concurrent Close";
      std::fflush(nullptr);
      std::abort();
    }
    const Status st = flushed.get();
    EXPECT_TRUE(st.ok() || st.IsCancelled()) << st;
    EXPECT_TRUE(t->Send(0, 1, kTagControl, {1}).IsCancelled());
    // Whatever was delivered before the race resolved stays drainable,
    // in order, with intact payloads.
    size_t delivered = 0;
    for (auto& msg : t->DrainAll(1)) {
      EXPECT_EQ(msg.payload.size(), 64u * 1024u);
      ++delivered;
    }
    EXPECT_LE(delivered, 64u);
  }
}

INSTANTIATE_TEST_SUITE_P(Backends, TransportConformanceTest,
                         ::testing::ValuesIn(TransportNames()),
                         [](const auto& info) { return info.param; });

// Socket-specific: a later-created transport's endpoint children inherit
// the parent's fd table at fork time. If they kept an earlier transport's
// channel write ends open, that transport's children would never see EOF
// and its destructor would hang on the receiver join — so coexisting
// transports must be destroyable in any order.
TEST(SocketTransportInteropTest, OutOfOrderDestructionDoesNotHang) {
  auto ra = MakeTransport("socket", 2);
  ASSERT_TRUE(ra.ok()) << ra.status();
  std::unique_ptr<Transport> a = std::move(ra).value();
  auto rb = MakeTransport("socket", 2);
  ASSERT_TRUE(rb.ok()) << rb.status();
  std::unique_ptr<Transport> b = std::move(rb).value();

  ASSERT_TRUE(a->Send(0, 1, kTagControl, {1}).ok());
  ASSERT_TRUE(a->Flush().ok());
  EXPECT_EQ(a->TryRecv(1)->payload[0], 1);
  a.reset();  // must not block, despite b's children forked while a lived

  ASSERT_TRUE(b->Send(0, 1, kTagControl, {2}).ok());
  ASSERT_TRUE(b->Flush().ok());
  EXPECT_EQ(b->TryRecv(1)->payload[0], 2);
}

}  // namespace
}  // namespace grape
