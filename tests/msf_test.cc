#include <numeric>
#include <string>
#include <tuple>

#include "apps/msf.h"
#include "graph/generators.h"
#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace grape {
namespace {

/// Forest validity: acyclic (|edges| = n - #components) and every edge
/// exists in the graph with the right weight.
void CheckForest(const Graph& g, const MsfOutput& msf) {
  EXPECT_EQ(msf.edges.size(),
            g.num_vertices() - msf.num_components);
  for (const Edge& e : msf.edges) {
    bool found = false;
    for (const Neighbor& nb : g.OutNeighbors(e.src)) {
      if (nb.vertex == e.dst && nb.weight == e.weight) found = true;
    }
    for (const Neighbor& nb : g.OutNeighbors(e.dst)) {
      if (nb.vertex == e.src && nb.weight == e.weight) found = true;
    }
    if (g.is_directed()) {
      for (const Neighbor& nb : g.InNeighbors(e.src)) {
        if (nb.vertex == e.dst && nb.weight == e.weight) found = true;
      }
    }
    EXPECT_TRUE(found) << e.src << "-" << e.dst;
  }
}

TEST(SeqKruskalTest, HandComputedMst) {
  GraphBuilder builder(false);
  builder.AddEdge(0, 1, 4);
  builder.AddEdge(0, 2, 3);
  builder.AddEdge(1, 2, 1);
  builder.AddEdge(1, 3, 2);
  builder.AddEdge(2, 3, 4);
  builder.AddEdge(3, 4, 2);
  auto g = std::move(builder).Build();
  ASSERT_TRUE(g.ok());
  MsfOutput mst = SeqKruskal(*g);
  EXPECT_EQ(mst.num_components, 1u);
  EXPECT_EQ(mst.edges.size(), 4u);
  EXPECT_DOUBLE_EQ(mst.total_weight, 1 + 2 + 2 + 3);
}

TEST(SeqKruskalTest, ForestOnDisconnectedInput) {
  GraphBuilder builder(false);
  builder.AddEdge(0, 1, 5);
  builder.AddEdge(2, 3, 7);
  builder.AddVertex(9);
  auto g = std::move(builder).Build();
  ASSERT_TRUE(g.ok());
  MsfOutput msf = SeqKruskal(*g);
  EXPECT_EQ(msf.num_components, 3u + 5u);  // two pairs, 9, and ids 4..8
  EXPECT_EQ(msf.edges.size(), 2u);
  EXPECT_DOUBLE_EQ(msf.total_weight, 12.0);
}

using MsfParam = std::tuple<std::string, FragmentId>;

class MsfMatrixTest : public ::testing::TestWithParam<MsfParam> {};

TEST_P(MsfMatrixTest, MatchesKruskalWeight) {
  const auto& [strategy, nfrag] = GetParam();
  auto g = GenerateErdosRenyi(400, 2400, /*directed=*/false, 1501);
  ASSERT_TRUE(g.ok());
  MsfOutput expected = SeqKruskal(*g);

  FragmentedGraph fg = testing::MakeFragments(*g, strategy, nfrag);
  auto msf = MsfSolver::Solve(fg);
  ASSERT_TRUE(msf.ok()) << msf.status();
  EXPECT_EQ(msf->num_components, expected.num_components);
  EXPECT_EQ(msf->edges.size(), expected.edges.size());
  EXPECT_NEAR(msf->total_weight, expected.total_weight, 1e-9);
  CheckForest(*g, *msf);
  EXPECT_GE(msf->phases, 1u);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, MsfMatrixTest,
    ::testing::Combine(::testing::Values("hash", "metis", "ldg"),
                       ::testing::Values(FragmentId{1}, FragmentId{4},
                                         FragmentId{8})),
    [](const auto& info) {
      return std::get<0>(info.param) + "_" +
             std::to_string(std::get<1>(info.param));
    });

TEST(MsfTest, RoadNetworkMst) {
  auto g = GenerateGridRoad(25, 25, 1511);
  ASSERT_TRUE(g.ok());
  MsfOutput expected = SeqKruskal(*g);
  FragmentedGraph fg = testing::MakeFragments(*g, "grid2d", 4);
  auto msf = MsfSolver::Solve(fg);
  ASSERT_TRUE(msf.ok());
  EXPECT_EQ(msf->num_components, 1u);
  EXPECT_EQ(msf->edges.size(), g->num_vertices() - 1u);
  EXPECT_NEAR(msf->total_weight, expected.total_weight, 1e-9);
  CheckForest(*g, *msf);
}

TEST(MsfTest, DisconnectedForest) {
  // Two islands plus isolated vertices.
  GraphBuilder builder(false);
  auto a = GenerateRandomTree(30, 1523, false);
  ASSERT_TRUE(a.ok());
  for (const Edge& e : a->ToEdgeList()) builder.AddEdge(e);
  auto b = GenerateRandomTree(20, 1531, false);
  ASSERT_TRUE(b.ok());
  for (const Edge& e : b->ToEdgeList()) {
    builder.AddEdge(e.src + 30, e.dst + 30, e.weight);
  }
  builder.AddVertex(55);
  auto g = std::move(builder).Build();
  ASSERT_TRUE(g.ok());

  FragmentedGraph fg = testing::MakeFragments(*g, "hash", 3);
  auto msf = MsfSolver::Solve(fg);
  ASSERT_TRUE(msf.ok());
  MsfOutput expected = SeqKruskal(*g);
  EXPECT_EQ(msf->num_components, expected.num_components);
  EXPECT_NEAR(msf->total_weight, expected.total_weight, 1e-9);
}

TEST(MsfTest, PhaseCountIsLogarithmic) {
  auto g = GenerateErdosRenyi(1000, 6000, false, 1543);
  ASSERT_TRUE(g.ok());
  FragmentedGraph fg = testing::MakeFragments(*g, "hash", 4);
  auto msf = MsfSolver::Solve(fg);
  ASSERT_TRUE(msf.ok());
  // Borůvka halves components per phase: log2(1000) ~ 10.
  EXPECT_LE(msf->phases, 12u);
}

TEST(MsfTest, DirectedInputUsesUndirectedView) {
  RMatOptions opts;
  opts.scale = 8;
  opts.edge_factor = 5;
  opts.seed = 1549;
  auto g = GenerateRMat(opts);
  ASSERT_TRUE(g.ok());
  MsfOutput expected = SeqKruskal(*g);
  FragmentedGraph fg = testing::MakeFragments(*g, "hash", 4);
  auto msf = MsfSolver::Solve(fg);
  ASSERT_TRUE(msf.ok());
  EXPECT_EQ(msf->num_components, expected.num_components);
  EXPECT_NEAR(msf->total_weight, expected.total_weight, 1e-9);
}

}  // namespace
}  // namespace grape
