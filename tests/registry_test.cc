#include <string>

#include "apps/register_apps.h"
#include "core/app_registry.h"
#include "graph/generators.h"
#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace grape {
namespace {

class RegistryTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { RegisterBuiltinApps(); }
};

TEST_F(RegistryTest, AllBuiltinsRegistered) {
  auto names = AppRegistry::Global().Names();
  for (const char* expected :
       {"sssp", "bfs", "cc", "pagerank", "sim", "dualsim", "subiso",
        "keyword", "cf", "gpar", "triangle", "kcore"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected;
  }
}

TEST_F(RegistryTest, UnknownAppFails) {
  EXPECT_FALSE(AppRegistry::Global().Get("nope").ok());
}

TEST_F(RegistryTest, RegistrationIsIdempotent) {
  size_t before = AppRegistry::Global().Names().size();
  RegisterBuiltinApps();
  EXPECT_EQ(AppRegistry::Global().Names().size(), before);
}

// "Plug and play": run every registered query class end-to-end on a graph
// it can digest, through the type-erased registry interface — the
// integration path a demo user exercises.
TEST_F(RegistryTest, PlayEveryQueryClass) {
  LabeledGraphOptions lopts;
  lopts.scale = 7;
  lopts.edge_factor = 5;
  lopts.num_vertex_labels = 3;
  lopts.seed = 801;
  auto labeled = GenerateLabeledGraph(lopts);
  ASSERT_TRUE(labeled.ok());
  FragmentedGraph labeled_fg = testing::MakeFragments(*labeled, "hash", 4);

  EngineOptions opts;
  for (const std::string name : {"sssp", "bfs", "cc", "pagerank", "sim",
                                  "dualsim", "keyword", "triangle",
                                  "kcore"}) {
    auto app = AppRegistry::Global().Get(name);
    ASSERT_TRUE(app.ok()) << name;
    EngineMetrics metrics;
    auto result = app->run(labeled_fg, ParseQueryArgs({"source=0"}), opts,
                           &metrics);
    ASSERT_TRUE(result.ok()) << name << ": " << result.status();
    EXPECT_FALSE(result->empty()) << name;
    EXPECT_GE(metrics.supersteps, 1u) << name;
  }

  // subiso with a label-constrained pattern on the same graph.
  {
    auto app = AppRegistry::Global().Get("subiso");
    ASSERT_TRUE(app.ok());
    auto result = app->run(labeled_fg,
                           ParseQueryArgs({"pattern=path3", "l0=0", "l1=1",
                                           "l2=2", "limit=1000"}),
                           opts, nullptr);
    ASSERT_TRUE(result.ok()) << result.status();
  }

  // cf on a bipartite rating graph.
  {
    BipartiteOptions bopts;
    bopts.num_users = 150;
    bopts.num_items = 25;
    bopts.ratings_per_user = 8;
    auto ratings = GenerateBipartiteRatings(bopts);
    ASSERT_TRUE(ratings.ok());
    FragmentedGraph fg = testing::MakeFragments(*ratings, "hash", 4);
    auto app = AppRegistry::Global().Get("cf");
    ASSERT_TRUE(app.ok());
    auto result = app->run(fg, ParseQueryArgs({"epochs=3"}), opts, nullptr);
    ASSERT_TRUE(result.ok()) << result.status();
  }

  // gpar on a social graph.
  {
    SocialGraphOptions sopts;
    sopts.num_persons = 500;
    sopts.num_items = 4;
    auto social = GenerateSocialGraph(sopts);
    ASSERT_TRUE(social.ok());
    FragmentedGraph fg = testing::MakeFragments(*social, "hash", 4);
    auto app = AppRegistry::Global().Get("gpar");
    ASSERT_TRUE(app.ok());
    auto result = app->run(fg, ParseQueryArgs({"item=500"}), opts, nullptr);
    ASSERT_TRUE(result.ok()) << result.status();
  }
}

TEST_F(RegistryTest, CustomAppCanBePluggedIn) {
  // Plugging a user-defined strategy mirrors the demo's developer flow.
  RegisteredApp custom;
  custom.name = "answer";
  custom.description = "returns 42";
  custom.run = [](const FragmentedGraph&, const QueryArgs&,
                  const EngineOptions&, EngineMetrics*) {
    return Result<std::string>(std::string("42"));
  };
  AppRegistry::Global().Register(custom);
  auto app = AppRegistry::Global().Get("answer");
  ASSERT_TRUE(app.ok());
  auto g = GeneratePath(4);
  ASSERT_TRUE(g.ok());
  FragmentedGraph fg = testing::MakeFragments(*g, "hash", 2);
  auto result = app->run(fg, {}, EngineOptions{}, nullptr);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, "42");
}

TEST(QueryArgsTest, ParsesKeyValuePairs) {
  QueryArgs args = ParseQueryArgs({"a=1", "flag", "b=x=y"});
  EXPECT_EQ(args.at("a"), "1");
  EXPECT_EQ(args.at("flag"), "true");
  EXPECT_EQ(args.at("b"), "x=y");
}

}  // namespace
}  // namespace grape
