#include <cstdint>
#include <string>
#include <vector>

#include "core/codec.h"
#include "gtest/gtest.h"
#include "util/serializer.h"

namespace grape {
namespace {

TEST(SerializerTest, FixedWidthRoundTrip) {
  Encoder enc;
  enc.WriteU8(7);
  enc.WriteU32(0xdeadbeef);
  enc.WriteU64(0x0123456789abcdefULL);
  enc.WriteI32(-42);
  enc.WriteI64(-1234567890123LL);
  enc.WriteDouble(3.14159);
  enc.WriteFloat(2.5f);
  enc.WriteBool(true);

  Decoder dec(enc.buffer());
  uint8_t u8;
  uint32_t u32;
  uint64_t u64;
  int32_t i32;
  int64_t i64;
  double d;
  float f;
  bool b;
  ASSERT_TRUE(dec.ReadU8(&u8).ok());
  ASSERT_TRUE(dec.ReadU32(&u32).ok());
  ASSERT_TRUE(dec.ReadU64(&u64).ok());
  ASSERT_TRUE(dec.ReadI32(&i32).ok());
  ASSERT_TRUE(dec.ReadI64(&i64).ok());
  ASSERT_TRUE(dec.ReadDouble(&d).ok());
  ASSERT_TRUE(dec.ReadFloat(&f).ok());
  ASSERT_TRUE(dec.ReadBool(&b).ok());
  EXPECT_EQ(u8, 7);
  EXPECT_EQ(u32, 0xdeadbeef);
  EXPECT_EQ(u64, 0x0123456789abcdefULL);
  EXPECT_EQ(i32, -42);
  EXPECT_EQ(i64, -1234567890123LL);
  EXPECT_DOUBLE_EQ(d, 3.14159);
  EXPECT_FLOAT_EQ(f, 2.5f);
  EXPECT_TRUE(b);
  EXPECT_TRUE(dec.AtEnd());
}

TEST(SerializerTest, VarintRoundTripBoundaries) {
  std::vector<uint64_t> values = {0,       1,        127,       128,
                                  16383,   16384,    (1u << 21) - 1,
                                  1u << 21, UINT32_MAX, UINT64_MAX};
  Encoder enc;
  for (uint64_t v : values) enc.WriteVarint(v);
  Decoder dec(enc.buffer());
  for (uint64_t expected : values) {
    uint64_t v = 0;
    ASSERT_TRUE(dec.ReadVarint(&v).ok());
    EXPECT_EQ(v, expected);
  }
  EXPECT_TRUE(dec.AtEnd());
}

TEST(SerializerTest, VarintEncodingIsCompact) {
  Encoder enc;
  enc.WriteVarint(5);
  EXPECT_EQ(enc.size(), 1u);
  enc.Clear();
  enc.WriteVarint(300);
  EXPECT_EQ(enc.size(), 2u);
}

TEST(SerializerTest, StringRoundTrip) {
  Encoder enc;
  enc.WriteString("hello");
  enc.WriteString("");
  enc.WriteString(std::string(1000, 'x'));
  Decoder dec(enc.buffer());
  std::string a;
  std::string b;
  std::string c;
  ASSERT_TRUE(dec.ReadString(&a).ok());
  ASSERT_TRUE(dec.ReadString(&b).ok());
  ASSERT_TRUE(dec.ReadString(&c).ok());
  EXPECT_EQ(a, "hello");
  EXPECT_EQ(b, "");
  EXPECT_EQ(c.size(), 1000u);
}

TEST(SerializerTest, PodVectorRoundTrip) {
  std::vector<uint32_t> in = {1, 2, 3, 0xffffffff};
  Encoder enc;
  enc.WritePodVector(in);
  Decoder dec(enc.buffer());
  std::vector<uint32_t> out;
  ASSERT_TRUE(dec.ReadPodVector(&out).ok());
  EXPECT_EQ(out, in);
}

TEST(SerializerTest, TruncatedReadsFail) {
  Encoder enc;
  enc.WriteU64(12345);
  // Cut the buffer short.
  Decoder dec(enc.buffer().data(), 4);
  uint64_t v = 0;
  EXPECT_TRUE(dec.ReadU64(&v).IsCorruption());
}

TEST(SerializerTest, TruncatedVarintFails) {
  Encoder enc;
  enc.WriteVarint(UINT64_MAX);
  Decoder dec(enc.buffer().data(), 3);
  uint64_t v = 0;
  EXPECT_TRUE(dec.ReadVarint(&v).IsCorruption());
}

TEST(SerializerTest, OverlongVarintFails) {
  // 11 continuation bytes encode more than 64 bits.
  std::vector<uint8_t> bad(11, 0xff);
  Decoder dec(bad);
  uint64_t v = 0;
  EXPECT_TRUE(dec.ReadVarint(&v).IsCorruption());
}

TEST(SerializerTest, TruncatedStringFails) {
  Encoder enc;
  enc.WriteString("hello world");
  Decoder dec(enc.buffer().data(), 5);
  std::string s;
  EXPECT_TRUE(dec.ReadString(&s).IsCorruption());
}

TEST(CodecTest, ArithmeticRoundTrip) {
  Encoder enc;
  EncodeValue(enc, 42);
  EncodeValue(enc, 2.718);
  EncodeValue(enc, static_cast<uint8_t>(9));
  Decoder dec(enc.buffer());
  int i = 0;
  double d = 0;
  uint8_t u = 0;
  ASSERT_TRUE(DecodeValue(dec, &i).ok());
  ASSERT_TRUE(DecodeValue(dec, &d).ok());
  ASSERT_TRUE(DecodeValue(dec, &u).ok());
  EXPECT_EQ(i, 42);
  EXPECT_DOUBLE_EQ(d, 2.718);
  EXPECT_EQ(u, 9);
}

TEST(CodecTest, VectorRoundTrip) {
  std::vector<double> in = {1.0, 2.5, -3.75};
  Encoder enc;
  EncodeValue(enc, in);
  Decoder dec(enc.buffer());
  std::vector<double> out;
  ASSERT_TRUE(DecodeValue(dec, &out).ok());
  EXPECT_EQ(out, in);
}

TEST(CodecTest, NestedVectorRoundTrip) {
  std::vector<std::vector<uint32_t>> in = {{1, 2}, {}, {3, 4, 5}};
  Encoder enc;
  EncodeValue(enc, in);
  Decoder dec(enc.buffer());
  std::vector<std::vector<uint32_t>> out;
  ASSERT_TRUE(DecodeValue(dec, &out).ok());
  EXPECT_EQ(out, in);
}

TEST(CodecTest, PairRoundTrip) {
  std::pair<uint32_t, double> in = {7, 1.5};
  Encoder enc;
  EncodeValue(enc, in);
  Decoder dec(enc.buffer());
  std::pair<uint32_t, double> out;
  ASSERT_TRUE(DecodeValue(dec, &out).ok());
  EXPECT_EQ(out, in);
}

struct CustomValue {
  uint32_t a = 0;
  std::string tag;

  void EncodeTo(Encoder& enc) const {
    enc.WriteU32(a);
    enc.WriteString(tag);
  }
  static Status DecodeFrom(Decoder& dec, CustomValue* out) {
    GRAPE_RETURN_NOT_OK(dec.ReadU32(&out->a));
    return dec.ReadString(&out->tag);
  }
};

TEST(CodecTest, SelfCodableRoundTrip) {
  CustomValue in{99, "grape"};
  Encoder enc;
  EncodeValue(enc, in);
  Decoder dec(enc.buffer());
  CustomValue out;
  ASSERT_TRUE(DecodeValue(dec, &out).ok());
  EXPECT_EQ(out.a, 99u);
  EXPECT_EQ(out.tag, "grape");
}

TEST(CodecTest, TruncatedVectorFails) {
  std::vector<uint64_t> in = {1, 2, 3, 4, 5};
  Encoder enc;
  EncodeValue(enc, in);
  Decoder dec(enc.buffer().data(), enc.size() - 3);
  std::vector<uint64_t> out;
  EXPECT_FALSE(DecodeValue(dec, &out).ok());
}

}  // namespace
}  // namespace grape
