#include <cmath>
#include <numeric>

#include "apps/pagerank.h"
#include "apps/seq/seq_algorithms.h"
#include "core/engine.h"
#include "graph/generators.h"
#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace grape {
namespace {

class PageRankPartitionTest
    : public ::testing::TestWithParam<FragmentId> {};

TEST_P(PageRankPartitionTest, MatchesSequentialPowerIteration) {
  RMatOptions opts;
  opts.scale = 9;
  opts.edge_factor = 6;
  opts.seed = 307;
  auto g = GenerateRMat(opts);
  ASSERT_TRUE(g.ok());

  PageRankConfig config;
  config.damping = 0.85;
  config.max_iterations = 30;
  config.epsilon = 0.0;  // fixed iteration count for exact comparability
  std::vector<double> expected = SeqPageRank(*g, config);

  FragmentedGraph fg = testing::MakeFragments(*g, "hash", GetParam());
  PageRankQuery query;
  query.damping = 0.85;
  query.max_iterations = 30;
  query.epsilon = 0.0;
  GrapeEngine<PageRankApp> engine(fg, PageRankApp{});
  auto out = engine.Run(query);
  ASSERT_TRUE(out.ok()) << out.status();
  ASSERT_EQ(out->rank.size(), g->num_vertices());
  for (VertexId v = 0; v < g->num_vertices(); ++v) {
    EXPECT_NEAR(out->rank[v], expected[v], 1e-10) << "vertex " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Workers, PageRankPartitionTest,
                         ::testing::Values(FragmentId{1}, FragmentId{4},
                                           FragmentId{8}),
                         [](const auto& info) {
                           return "n" + std::to_string(info.param);
                         });

TEST(PageRankTest, EpsilonTerminationMatchesSequential) {
  RMatOptions opts;
  opts.scale = 8;
  opts.edge_factor = 8;
  opts.seed = 311;
  auto g = GenerateRMat(opts);
  ASSERT_TRUE(g.ok());

  PageRankConfig config;
  config.max_iterations = 200;
  config.epsilon = 1e-7;
  std::vector<double> expected = SeqPageRank(*g, config);

  FragmentedGraph fg = testing::MakeFragments(*g, "metis", 4);
  PageRankQuery query;
  query.max_iterations = 200;
  query.epsilon = 1e-7;
  GrapeEngine<PageRankApp> engine(fg, PageRankApp{});
  auto out = engine.Run(query);
  ASSERT_TRUE(out.ok());
  for (VertexId v = 0; v < g->num_vertices(); ++v) {
    // Per-fragment summation order may shift the termination round by one;
    // compare loosely.
    EXPECT_NEAR(out->rank[v], expected[v], 1e-6);
  }
}

TEST(PageRankTest, SingleFragmentIteratesWithoutMessages) {
  // Regression test: with n=1 there are no border vertices at all, yet the
  // engine must keep scheduling IncEval until convergence — termination is
  // "no update parameter changed", not "no message in flight".
  auto g = GenerateCycle(50, /*directed=*/true);
  ASSERT_TRUE(g.ok());
  FragmentedGraph fg = testing::MakeFragments(*g, "hash", 1);
  PageRankQuery query;
  query.max_iterations = 10;
  query.epsilon = 0.0;
  GrapeEngine<PageRankApp> engine(fg, PageRankApp{});
  auto out = engine.Run(query);
  ASSERT_TRUE(out.ok());
  // On a cycle, PageRank is uniform — and because uniform ranks are an
  // exact fixed point of the update, the engine may stop as soon as no
  // parameter changes (after the first IncEval at superstep 2).
  for (double r : out->rank) EXPECT_NEAR(r, 1.0 / 50, 1e-12);
  EXPECT_GE(engine.metrics().supersteps, 2u);
  EXPECT_LE(engine.metrics().supersteps, 11u);
}

TEST(PageRankTest, SingleFragmentRunsAllIterationsWhenNotConverged) {
  // A directed star keeps changing ranks every iteration, so a single
  // fragment must execute the full iteration budget.
  GraphBuilder builder(true);
  for (VertexId leaf = 1; leaf <= 9; ++leaf) {
    builder.AddEdge(leaf, 0);
    builder.AddEdge(0, leaf);
  }
  auto g = std::move(builder).Build();
  ASSERT_TRUE(g.ok());
  FragmentedGraph fg = testing::MakeFragments(*g, "hash", 1);
  PageRankQuery query;
  query.max_iterations = 10;
  query.epsilon = 0.0;
  GrapeEngine<PageRankApp> engine(fg, PageRankApp{});
  ASSERT_TRUE(engine.Run(query).ok());
  EXPECT_EQ(engine.metrics().supersteps, 11u);  // PEval + 10 iterations
}

TEST(PageRankTest, RankMassAccountsForDanglingPolicy) {
  // With dangling mass dropped, total mass is <= 1 and >= (1-d).
  RMatOptions opts;
  opts.scale = 8;
  opts.seed = 313;
  auto g = GenerateRMat(opts);
  ASSERT_TRUE(g.ok());
  FragmentedGraph fg = testing::MakeFragments(*g, "hash", 4);
  PageRankQuery query;
  query.max_iterations = 40;
  GrapeEngine<PageRankApp> engine(fg, PageRankApp{});
  auto out = engine.Run(query);
  ASSERT_TRUE(out.ok());
  double mass = std::accumulate(out->rank.begin(), out->rank.end(), 0.0);
  EXPECT_LE(mass, 1.0 + 1e-9);
  EXPECT_GE(mass, 0.15);
  for (double r : out->rank) EXPECT_GT(r, 0.0);
}

TEST(PageRankTest, StarConcentratesRankAtCenter) {
  // Directed star: leaves point at the hub.
  GraphBuilder builder(true);
  for (VertexId leaf = 1; leaf <= 20; ++leaf) builder.AddEdge(leaf, 0);
  auto g = std::move(builder).Build();
  ASSERT_TRUE(g.ok());
  FragmentedGraph fg = testing::MakeFragments(*g, "hash", 3);
  PageRankQuery query;
  query.max_iterations = 20;
  GrapeEngine<PageRankApp> engine(fg, PageRankApp{});
  auto out = engine.Run(query);
  ASSERT_TRUE(out.ok());
  for (VertexId leaf = 1; leaf <= 20; ++leaf) {
    EXPECT_GT(out->rank[0], out->rank[leaf]);
  }
}

}  // namespace
}  // namespace grape
