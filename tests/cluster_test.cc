// The launcher/roster layer (rt/cluster.h): host-list parsing, the
// --rank/--hosts contract, and a real cluster-mode tcp world on
// localhost — a rank-0 engine process whose rendezvous listener hands the
// roster to standalone endpoints that joined via RunClusterEndpoint
// (here: threads driving the same blocking endpoint code a remote
// machine's process would run), full-mesh traffic, and a clean
// coordinated shutdown that releases every endpoint.

#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "apps/register_apps.h"
#include "apps/sssp.h"
#include "core/engine.h"
#include "gtest/gtest.h"
#include "rt/cluster.h"
#include "rt/message.h"
#include "tests/message_path_scenarios.h"
#include "util/flags.h"

namespace grape {
namespace {

TEST(ClusterTest, ParseHostListAcceptsRosters) {
  auto hosts = ParseHostList("node-a:9000,node-b:9001,10.0.0.3:9002");
  ASSERT_TRUE(hosts.ok()) << hosts.status();
  ASSERT_EQ(hosts->size(), 3u);
  EXPECT_EQ((*hosts)[0], (HostPort{"node-a", 9000}));
  EXPECT_EQ((*hosts)[1], (HostPort{"node-b", 9001}));
  EXPECT_EQ((*hosts)[2], (HostPort{"10.0.0.3", 9002}));
  EXPECT_EQ(FormatHostList(*hosts), "node-a:9000,node-b:9001,10.0.0.3:9002");

  // A bare host means "ephemeral mesh port".
  auto bare = ParseHostList("solo");
  ASSERT_TRUE(bare.ok());
  EXPECT_EQ((*bare)[0], (HostPort{"solo", 0}));
}

TEST(ClusterTest, ParseHostListRejectsGarbage) {
  EXPECT_TRUE(ParseHostList("").status().IsInvalidArgument());
  EXPECT_TRUE(ParseHostList("a:1,,b:2").status().IsInvalidArgument());
  EXPECT_TRUE(ParseHostList("a:notaport").status().IsInvalidArgument());
  EXPECT_TRUE(ParseHostList("a:99999").status().IsInvalidArgument());
  EXPECT_TRUE(ParseHostList(":9000").status().IsInvalidArgument());
}

ClusterSpec SpecFromArgs(std::vector<const char*> argv, bool expect_ok = true) {
  argv.insert(argv.begin(), "test");
  FlagParser flags;
  EXPECT_TRUE(flags.Parse(static_cast<int>(argv.size()), argv.data()).ok());
  auto spec = ClusterSpec::FromFlags(flags);
  EXPECT_EQ(spec.ok(), expect_ok) << spec.status();
  return spec.ok() ? *spec : ClusterSpec{};
}

TEST(ClusterTest, SpecFromFlags) {
  ClusterSpec none = SpecFromArgs({});
  EXPECT_EQ(none.rank, 0u);
  EXPECT_TRUE(none.single_host());

  ClusterSpec two = SpecFromArgs({"--rank=1", "--hosts=a:9000,b:9001"});
  EXPECT_EQ(two.rank, 1u);
  ASSERT_EQ(two.hosts.size(), 2u);
  EXPECT_EQ(two.hosts[1], (HostPort{"b", 9001}));

  // A non-zero rank is an endpoint; it cannot run without a roster, and
  // the rank must name a roster entry.
  FlagParser bad_rank;
  const char* bad1[] = {"test", "--rank=2"};
  ASSERT_TRUE(bad_rank.Parse(2, bad1).ok());
  EXPECT_TRUE(ClusterSpec::FromFlags(bad_rank).status().IsInvalidArgument());
  FlagParser out_of_range;
  const char* bad2[] = {"test", "--rank=5", "--hosts=a:1,b:2"};
  ASSERT_TRUE(out_of_range.Parse(3, bad2).ok());
  EXPECT_TRUE(
      ClusterSpec::FromFlags(out_of_range).status().IsInvalidArgument());
  // hosts[0] is the address every endpoint dials, so an ephemeral port
  // there could never form a world — reject it up front rather than
  // letting both sides burn the rendezvous timeout.
  FlagParser eph_coord;
  const char* bad3[] = {"test", "--hosts=a,b:2"};
  ASSERT_TRUE(eph_coord.Parse(2, bad3).ok());
  EXPECT_TRUE(
      ClusterSpec::FromFlags(eph_coord).status().IsInvalidArgument());
}

TEST(ClusterTest, EndpointEntryPointValidatesItsRole) {
  ClusterSpec no_hosts;
  no_hosts.rank = 1;
  EXPECT_TRUE(RunClusterEndpoint(no_hosts).IsInvalidArgument());
  ClusterSpec rank0;
  rank0.hosts = {{"a", 1}, {"b", 2}};
  EXPECT_TRUE(RunClusterEndpoint(rank0).IsInvalidArgument());
}

TEST(ClusterTest, MakeClusterTransportGuardsItsInputs) {
  ClusterSpec spec;
  auto inproc = MakeClusterTransport("inproc", 3, spec);
  ASSERT_TRUE(inproc.ok()) << inproc.status();
  EXPECT_EQ((*inproc)->name(), "inproc");

  // A roster only makes sense for tcp.
  ClusterSpec with_hosts;
  with_hosts.hosts = {{"a", 1}, {"b", 2}};
  EXPECT_TRUE(
      MakeClusterTransport("socket", 2, with_hosts).status()
          .IsInvalidArgument());
  // Roster size must match the world (workers + coordinator).
  EXPECT_TRUE(
      MakeClusterTransport("tcp", 5, with_hosts).status()
          .IsInvalidArgument());
  // An ephemeral coordinator port is undialable (programmatic path; the
  // flag path rejects it in ClusterSpec::FromFlags).
  ClusterSpec eph_coord;
  eph_coord.hosts = {{"a", 0}, {"b", 2}};
  EXPECT_TRUE(
      MakeClusterTransport("tcp", 2, eph_coord).status()
          .IsInvalidArgument());
  EXPECT_TRUE(RunClusterEndpoint([] {
                ClusterSpec s;
                s.rank = 1;
                s.hosts = {{"a", 0}, {"b", 2}};
                return s;
              }())
                  .IsInvalidArgument());
}

/// Reserves a port the kernel considers free right now (bind :0, read it
/// back, close) — the standard racy-but-fine trick for test listeners.
uint16_t GrabFreePort() {
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)),
            0);
  socklen_t len = sizeof(addr);
  EXPECT_EQ(getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len), 0);
  close(fd);
  return ntohs(addr.sin_port);
}

TEST(ClusterTest, ClusterModeWorldOverLocalhost) {
  // A 4-rank world in explicit-roster mode: rank 0 = the engine process
  // (this test), ranks 1-3 = standalone endpoints running the exact code
  // a remote machine's `--transport=tcp --rank=N` process runs, each
  // dialing the rank-0 listener, receiving the roster, and full-meshing.
  constexpr uint32_t kRanks = 4;
  std::vector<HostPort> hosts(kRanks, HostPort{"127.0.0.1", 0});
  hosts[0].port = GrabFreePort();

  std::vector<std::thread> endpoints;
  for (uint32_t r = 1; r < kRanks; ++r) {
    endpoints.emplace_back([hosts, r] {
      ClusterSpec spec;
      spec.rank = r;
      spec.hosts = hosts;
      Status st = RunClusterEndpoint(spec);
      EXPECT_TRUE(st.ok()) << "endpoint rank " << r << ": " << st;
    });
  }

  // Stray clients hammer the rendezvous listener while real endpoints
  // join: one connects and immediately hangs up, one sends a full-size
  // garbage hello. Both must be dropped without aborting or wedging the
  // launch (the listener sits on a well-known port; probes happen).
  std::thread stray([port = hosts[0].port] {
    for (int kind = 0; kind < 2; ++kind) {
      sockaddr_in addr{};
      addr.sin_family = AF_INET;
      addr.sin_port = htons(port);
      addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
      int fd = -1;
      for (int tries = 0; tries < 2000; ++tries) {  // listener may not be up
        fd = socket(AF_INET, SOCK_STREAM, 0);
        ASSERT_GE(fd, 0);
        if (connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                    sizeof(addr)) == 0) {
          break;
        }
        close(fd);
        fd = -1;
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      if (fd < 0) return;  // world already formed and listener closed: fine
      if (kind == 1) {
        const uint8_t junk[12] = {0xde, 0xad, 0xbe, 0xef, 9, 9,
                                  9,    9,    9,    9,    9, 9};
        (void)!write(fd, junk, sizeof(junk));
      }
      close(fd);
    }
  });

  ClusterSpec spec;
  spec.hosts = hosts;
  auto made = MakeClusterTransport("tcp", kRanks, spec);
  ASSERT_TRUE(made.ok()) << made.status();
  std::unique_ptr<Transport> t = std::move(made).value();
  EXPECT_EQ(t->name(), "tcp");
  EXPECT_EQ(t->size(), kRanks);

  // Full-mesh traffic: every ordered channel carries a tagged payload.
  for (uint32_t from = 0; from < kRanks; ++from) {
    for (uint32_t to = 0; to < kRanks; ++to) {
      ASSERT_TRUE(t->Send(from, to, kTagParamUpdate,
                          {static_cast<uint8_t>(from),
                           static_cast<uint8_t>(to)})
                      .ok());
    }
  }
  ASSERT_TRUE(t->Flush().ok());
  for (uint32_t to = 0; to < kRanks; ++to) {
    auto msgs = t->DrainAll(to);
    ASSERT_EQ(msgs.size(), kRanks) << "rank " << to;
    for (const auto& msg : msgs) {
      EXPECT_EQ(msg.payload[0], msg.from);
      EXPECT_EQ(msg.payload[1], to);
    }
  }
  EXPECT_EQ(t->stats().messages, kRanks * kRanks);

  // Coordinated shutdown: destroying the engine-side transport closes the
  // links, the endpoints drain the mesh and return OK, and nothing hangs.
  t.reset();
  for (auto& th : endpoints) th.join();
  stray.join();
}

TEST(ClusterTest, RemoteComputeRunsInsideEndpointProcesses) {
  // The headline of the remote-compute work: a live cluster-mode world in
  // which ranks > 0 are real OS processes running RunClusterEndpoint —
  // exactly what `--transport=tcp --rank=N` launches on another machine —
  // and PEval/IncEval execute IN those processes. The proof is twofold:
  // the per-rank compute counters the engine collects from worker acks,
  // and the acks' worker pids, which must be the forked endpoints' pids,
  // not this (engine) process's.
  RegisterBuiltinWorkerApps();  // endpoints snapshot the registry at fork

  constexpr uint32_t kRanks = 4;  // 3 workers + coordinator
  std::vector<HostPort> hosts(kRanks, HostPort{"127.0.0.1", 0});
  hosts[0].port = GrabFreePort();

  std::vector<pid_t> endpoint_pids;
  for (uint32_t r = 1; r < kRanks; ++r) {
    pid_t pid = fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      ClusterSpec spec;
      spec.rank = r;
      spec.hosts = hosts;
      Status st = RunClusterEndpoint(spec);
      _exit(st.ok() ? 0 : 1);
    }
    endpoint_pids.push_back(pid);
  }

  Graph g = testing::ScenarioGraph("grid");
  FragmentedGraph fg = testing::ScenarioFragments(g, "metis", kRanks - 1);

  // Local reference run (private inproc world) for the differential.
  EngineOptions local_options;
  GrapeEngine<SsspApp> local_engine(fg, SsspApp{}, local_options);
  auto local = local_engine.Run(SsspQuery{3});
  ASSERT_TRUE(local.ok()) << local.status();

  ClusterSpec spec;
  spec.hosts = hosts;
  auto made = MakeClusterTransport("tcp", kRanks, spec);
  ASSERT_TRUE(made.ok()) << made.status();
  std::unique_ptr<Transport> world = std::move(made).value();

  EngineOptions options;
  options.transport = world.get();
  options.remote_app = "sssp";
  GrapeEngine<SsspApp> engine(fg, SsspApp{}, options);
  auto remote = engine.Run(SsspQuery{3});
  ASSERT_TRUE(remote.ok()) << remote.status();
  EXPECT_EQ(remote->dist, local->dist)
      << "remote compute diverged from local compute";

  const EngineMetrics& m = engine.metrics();
  ASSERT_EQ(m.remote_peval_runs.size(), kRanks - 1);
  ASSERT_EQ(m.remote_inceval_runs.size(), kRanks - 1);
  ASSERT_EQ(m.remote_worker_pids.size(), kRanks - 1);
  ASSERT_GT(m.supersteps, 1u);
  const pid_t engine_pid = getpid();
  std::vector<pid_t> worker_pids;
  for (uint32_t i = 0; i < kRanks - 1; ++i) {
    // Every rank > 0 actually ran PEval once and IncEval every round.
    EXPECT_EQ(m.remote_peval_runs[i], 1u) << "worker " << i;
    EXPECT_EQ(m.remote_inceval_runs[i], m.supersteps - 1) << "worker " << i;
    // ...and did so in another OS process: the endpoint's.
    const pid_t wpid = static_cast<pid_t>(m.remote_worker_pids[i]);
    EXPECT_NE(wpid, engine_pid)
        << "worker " << i << " computed in the engine process";
    worker_pids.push_back(wpid);
  }
  std::sort(worker_pids.begin(), worker_pids.end());
  std::vector<pid_t> expected = endpoint_pids;
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(worker_pids, expected)
      << "worker pids are not the forked endpoint processes";

  // Coordinated shutdown: endpoints drain and exit 0.
  world.reset();
  for (pid_t pid : endpoint_pids) {
    int status = 0;
    ASSERT_EQ(waitpid(pid, &status, 0), pid);
    EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
        << "endpoint " << pid << " exited abnormally";
  }
}

TEST(ClusterTest, RemoteComputeRejectsUnknownApp) {
  // An endpoint whose registry does not know the requested app must
  // reject the load with a clean NotFound that reaches the Run caller —
  // not crash, not hang. The socket backend forks its endpoints at
  // Create time, before the engine's own-app auto-registration, so the
  // children genuinely lack the name.
  Graph g = testing::ScenarioGraph("grid");
  FragmentedGraph fg = testing::ScenarioFragments(g, "hash", 3);
  auto world = MakeTransport("socket", 4);
  ASSERT_TRUE(world.ok()) << world.status();
  EngineOptions options;
  options.transport = world->get();
  options.remote_app = "no_such_app_registered";
  options.remote_timeout_ms = 15000;
  GrapeEngine<SsspApp> engine(fg, SsspApp{}, options);
  auto out = engine.Run(SsspQuery{3});
  ASSERT_FALSE(out.ok()) << "engine ran an app no endpoint knows";
  EXPECT_TRUE(out.status().IsNotFound()) << out.status();
  EXPECT_NE(out.status().message().find("no_such_app_registered"),
            std::string::npos)
      << out.status();
}

}  // namespace
}  // namespace grape
