// Torture suite for the tcp transport's incremental frame decoder
// (rt/frame_decoder.h): a TCP stream owes you nothing about chunk
// boundaries, so the decoder must reassemble frames from 1-byte-at-a-time
// delivery, headers split at every offset, many frames coalesced into one
// read, and surface mid-frame EOF or a corrupt header as a Status — never
// a hang, an over-read past a frame's declared length, or UB. Frame
// payloads reuse the codec_fuzz_test corpora (random record blocks through
// EncodeRecordBlock), so every reassembled frame is also decoded back to
// records and compared bit for bit.

#include <algorithm>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "core/codec.h"
#include "gtest/gtest.h"
#include "rt/frame_decoder.h"
#include "rt/message.h"
#include "util/random.h"
#include "util/serializer.h"

namespace grape {
namespace {

struct Corpus {
  std::vector<RtMessage> frames;      // expected reassembly
  std::vector<uint8_t> wire;          // concatenated header+payload bytes
  std::vector<size_t> boundaries;     // wire offsets where a frame ends
};

/// Builds frames the way the engine does — random (dst_lid, value) record
/// blocks through EncodeRecordBlock — exactly the corpus codec_fuzz_test
/// round-trips, plus empty payloads, which are legal frames.
Corpus BuildCorpus(uint64_t seed, size_t frame_count) {
  Rng rng(seed);
  Corpus c;
  size_t at = 0;
  for (size_t f = 0; f < frame_count; ++f) {
    std::vector<uint8_t> payload;
    if (rng.NextBounded(5) != 0) {  // 1 in 5 frames is an empty payload
      const size_t n = rng.NextBounded(200);
      RecordBlock<double> block;
      std::vector<double> values(n);
      for (size_t k = 0; k < n; ++k) {
        uint64_t bits = rng.NextUint64();
        std::memcpy(&values[k], &bits, sizeof(bits));
        block.Append(static_cast<uint32_t>(rng.NextUint64()), values[k]);
      }
      Encoder enc;
      EncodeRecordBlock(enc, block);
      payload = enc.TakeBuffer();
    }
    RtMessage msg{static_cast<uint32_t>(rng.NextBounded(8)),
                  static_cast<uint32_t>(rng.NextBounded(8)),
                  static_cast<uint32_t>(rng.NextBounded(4)) + 1,
                  std::move(payload)};
    uint8_t header[kFrameHeaderBytes];
    EncodeFrameHeader(FrameHeader{msg.from, msg.to, msg.tag,
                                  static_cast<uint32_t>(msg.payload.size())},
                      header);
    c.wire.insert(c.wire.end(), header, header + sizeof(header));
    c.wire.insert(c.wire.end(), msg.payload.begin(), msg.payload.end());
    at += sizeof(header) + msg.payload.size();
    c.boundaries.push_back(at);
    c.frames.push_back(std::move(msg));
  }
  return c;
}

void ExpectFramesEqual(const std::vector<RtMessage>& got,
                       const std::vector<RtMessage>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].from, want[i].from) << "frame " << i;
    EXPECT_EQ(got[i].to, want[i].to) << "frame " << i;
    EXPECT_EQ(got[i].tag, want[i].tag) << "frame " << i;
    ASSERT_EQ(got[i].payload.size(), want[i].payload.size()) << "frame " << i;
    EXPECT_EQ(std::memcmp(got[i].payload.data(), want[i].payload.data(),
                          want[i].payload.size()),
              0)
        << "frame " << i << " payload bytes differ";
  }
}

/// Feeds `wire` in chunks produced by `next_chunk(offset)` and collects
/// every decoded frame.
template <typename NextChunk>
std::vector<RtMessage> DecodeChunked(FrameDecoder& dec,
                                     const std::vector<uint8_t>& wire,
                                     NextChunk next_chunk) {
  std::vector<RtMessage> out;
  size_t at = 0;
  while (at < wire.size()) {
    const size_t take = std::min(next_chunk(at), wire.size() - at);
    EXPECT_TRUE(dec.Feed(wire.data() + at, take).ok());
    at += take;
    while (auto msg = dec.Next()) out.push_back(std::move(*msg));
  }
  return out;
}

TEST(TcpFramingTest, OneByteAtATimeDelivery) {
  Corpus c = BuildCorpus(0x7c91ULL, 40);
  FrameDecoder dec;
  auto got = DecodeChunked(dec, c.wire, [](size_t) { return size_t{1}; });
  ExpectFramesEqual(got, c.frames);
  EXPECT_TRUE(dec.Finish().ok());
  EXPECT_FALSE(dec.mid_frame());
}

TEST(TcpFramingTest, HeaderSplitAtEveryOffset) {
  // One frame, its 16-byte header split at every possible position, the
  // payload arriving in two more pieces.
  Corpus c = BuildCorpus(0x11aaULL, 1);
  ASSERT_GT(c.frames[0].payload.size(), 4u);  // seed chosen to be non-empty
  for (size_t cut = 1; cut < kFrameHeaderBytes; ++cut) {
    FrameDecoder dec;
    EXPECT_TRUE(dec.Feed(c.wire.data(), cut).ok());
    EXPECT_FALSE(dec.Next().has_value()) << "frame completed mid-header";
    EXPECT_TRUE(dec.mid_frame());
    const size_t mid = kFrameHeaderBytes + c.frames[0].payload.size() / 2;
    EXPECT_TRUE(dec.Feed(c.wire.data() + cut, mid - cut).ok());
    EXPECT_FALSE(dec.Next().has_value()) << "frame completed mid-payload";
    EXPECT_TRUE(dec.Feed(c.wire.data() + mid, c.wire.size() - mid).ok());
    auto msg = dec.Next();
    ASSERT_TRUE(msg.has_value());
    EXPECT_EQ(msg->payload, c.frames[0].payload);
    EXPECT_TRUE(dec.Finish().ok());
  }
}

TEST(TcpFramingTest, CoalescedFramesInOneFeed) {
  Corpus c = BuildCorpus(0x2b2bULL, 25);
  FrameDecoder dec;
  ASSERT_TRUE(dec.Feed(c.wire.data(), c.wire.size()).ok());
  EXPECT_EQ(dec.ready_count(), c.frames.size());
  std::vector<RtMessage> got;
  while (auto msg = dec.Next()) got.push_back(std::move(*msg));
  ExpectFramesEqual(got, c.frames);
  EXPECT_TRUE(dec.Finish().ok());
}

TEST(TcpFramingTest, NeverOverReadsPastADeclaredLength) {
  // Feed exactly one frame plus j bytes of the next: the first frame must
  // complete using only its declared bytes, and the j extras must stay
  // buffered as the (incomplete) next frame — not be folded into the
  // first.
  Corpus c = BuildCorpus(0x91f3ULL, 2);
  const size_t first_end = c.boundaries[0];
  for (size_t extra : {size_t{0}, size_t{1}, size_t{7}, size_t{15}}) {
    FrameDecoder dec;
    ASSERT_TRUE(dec.Feed(c.wire.data(), first_end + extra).ok());
    auto msg = dec.Next();
    ASSERT_TRUE(msg.has_value());
    EXPECT_EQ(msg->payload, c.frames[0].payload);
    EXPECT_FALSE(dec.Next().has_value());
    EXPECT_EQ(dec.mid_frame(), extra > 0)
        << extra << " stray bytes misaccounted";
    EXPECT_EQ(dec.Finish().ok(), extra == 0);
  }
}

TEST(TcpFramingTest, MidFrameEofIsAStatusNeverAHang) {
  // EOF at every byte offset of a short stream: Finish() must say OK
  // exactly at frame boundaries and report a Status everywhere else.
  Corpus c = BuildCorpus(0x5d5dULL, 3);
  size_t bi = 0;
  for (size_t cut = 0; cut <= c.wire.size(); ++cut) {
    FrameDecoder dec;
    ASSERT_TRUE(dec.Feed(c.wire.data(), cut).ok());
    while (dec.Next()) {
    }
    while (bi < c.boundaries.size() && c.boundaries[bi] < cut) ++bi;
    const bool at_boundary =
        cut == 0 || (bi < c.boundaries.size() && c.boundaries[bi] == cut) ||
        cut == c.wire.size();
    if (at_boundary) {
      EXPECT_TRUE(dec.Finish().ok()) << "cut at " << cut;
    } else {
      const Status st = dec.Finish();
      EXPECT_FALSE(st.ok()) << "mid-frame EOF at " << cut << " not surfaced";
      EXPECT_TRUE(st.IsUnavailable()) << st;
    }
  }
}

TEST(TcpFramingTest, CorruptLengthIsRejectedBeforeAllocating) {
  uint8_t header[kFrameHeaderBytes];
  EncodeFrameHeader(FrameHeader{0, 1, 2, 0}, header);
  // Hand-corrupt the length field past the frame bound.
  const uint32_t bad = kMaxFramePayloadBytes + 17;
  header[12] = static_cast<uint8_t>(bad);
  header[13] = static_cast<uint8_t>(bad >> 8);
  header[14] = static_cast<uint8_t>(bad >> 16);
  header[15] = static_cast<uint8_t>(bad >> 24);
  FrameDecoder dec;
  Status st = dec.Feed(header, sizeof(header));
  EXPECT_TRUE(st.IsCorruption()) << st;
  EXPECT_FALSE(dec.Next().has_value());
  // The failure is sticky: the stream has lost sync for good.
  uint8_t more = 0;
  EXPECT_TRUE(dec.Feed(&more, 1).IsCorruption());
  EXPECT_TRUE(dec.Finish().IsCorruption());
}

TEST(TcpFramingTest, RandomChunkSizesReassembleBitIdentically) {
  // The general case: random chunk sizes from 1 byte to several frames,
  // across several corpora seeds, with a pool recycling payload buffers
  // the way the transport's receiver threads do.
  for (uint64_t seed : {0xa1ULL, 0xb2ULL, 0xc3ULL}) {
    Corpus c = BuildCorpus(seed, 60);
    BufferPool pool;
    FrameDecoder dec(&pool);
    Rng chunk_rng(seed * 7919);
    auto got = DecodeChunked(dec, c.wire, [&chunk_rng](size_t) {
      return static_cast<size_t>(chunk_rng.NextBounded(4096)) + 1;
    });
    ExpectFramesEqual(got, c.frames);
    EXPECT_TRUE(dec.Finish().ok());
    for (auto& msg : got) pool.Release(std::move(msg.payload));
    EXPECT_GT(pool.pooled(), 0u);
  }
}

TEST(TcpFramingTest, DecodedPayloadsDecodeBackToRecords) {
  // End-to-end through both layers: reassembled frame payloads must still
  // decode as record blocks (the decoder delivered bytes, not
  // approximately-bytes).
  Rng rng(0xeeffULL);
  const size_t n = 128;
  std::vector<uint32_t> lids(n);
  std::vector<double> values(n);
  for (size_t k = 0; k < n; ++k) {
    lids[k] = static_cast<uint32_t>(rng.NextUint64());
    values[k] = static_cast<double>(k) * 0.25;
  }
  RecordBlock<double> block;
  for (size_t k = 0; k < n; ++k) block.Append(lids[k], values[k]);
  Encoder enc;
  EncodeRecordBlock(enc, block);
  std::vector<uint8_t> payload = enc.TakeBuffer();
  std::vector<uint8_t> wire(kFrameHeaderBytes + payload.size());
  EncodeFrameHeader(
      FrameHeader{2, 3, 1, static_cast<uint32_t>(payload.size())},
      wire.data());
  std::memcpy(wire.data() + kFrameHeaderBytes, payload.data(),
              payload.size());

  FrameDecoder dec;
  auto got = DecodeChunked(dec, wire, [](size_t at) {
    return at % 3 + 1;  // ragged 1-3 byte chunks
  });
  ASSERT_EQ(got.size(), 1u);
  Decoder payload_dec(got[0].payload.data(), got[0].payload.size());
  std::vector<uint32_t> got_lids;
  std::vector<double> got_values;
  ASSERT_TRUE(DecodeRecordBlock(payload_dec, &got_lids, &got_values).ok());
  EXPECT_EQ(got_lids, lids);
  EXPECT_EQ(std::memcmp(got_values.data(), values.data(),
                        values.size() * sizeof(double)),
            0);
}

}  // namespace
}  // namespace grape
