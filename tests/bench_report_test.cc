#include "bench/bench_report.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>

#include "gtest/gtest.h"
#include "tests/test_util.h"
#include "util/result.h"

namespace grape {
namespace bench {
namespace {

Report MakeSampleReport() {
  Report report("table1_sssp");
  ReportRow vc;
  vc.system = "Giraph-like (VC)";
  vc.category = "vertex-centric";
  vc.time_s = 1.25;
  vc.comm_mb = 102.5;
  vc.rounds = 580;
  vc.messages = 7500000;
  vc.correct = true;
  report.Add(vc);
  ReportRow grape;
  grape.system = "GRAPE";
  grape.category = "auto-parallelization";
  grape.time_s = 0.0125;
  grape.comm_mb = 0.05;
  grape.rounds = 11;
  grape.messages = 120;
  grape.correct = true;
  report.Add(grape);
  return report;
}

TEST(BenchReportTest, JsonContainsAllExpectedKeys) {
  const std::string json = MakeSampleReport().ToJson();
  for (const std::string key :
       {"bench", "rows", "system", "category", "time_s", "comm_mb", "rounds",
        "messages", "correct"}) {
    EXPECT_NE(json.find("\"" + key + "\""), std::string::npos)
        << "missing key '" << key << "' in:\n" << json;
  }
}

TEST(BenchReportTest, RoundTripsThroughJson) {
  const Report report = MakeSampleReport();
  auto parsed = Report::FromJson(report.ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->bench(), report.bench());
  ASSERT_EQ(parsed->rows().size(), report.rows().size());
  for (size_t i = 0; i < report.rows().size(); ++i) {
    EXPECT_TRUE(parsed->rows()[i] == report.rows()[i]) << "row " << i;
  }
}

TEST(BenchReportTest, RowOrderIsPreserved) {
  const Report report = MakeSampleReport();
  auto parsed = Report::FromJson(report.ToJson());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->rows()[0].system, "Giraph-like (VC)");
  EXPECT_EQ(parsed->rows()[1].system, "GRAPE");
}

TEST(BenchReportTest, EscapesSpecialCharacters) {
  Report report("edge \"cases\"\n");
  ReportRow row;
  row.system = "back\\slash\ttab";
  row.category = "quote \" newline \n";
  report.Add(row);
  const std::string json = report.ToJson();
  // The raw control characters must not survive unescaped inside strings.
  EXPECT_EQ(json.find("quote \" newline \n\""), std::string::npos);
  auto parsed = Report::FromJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->bench(), "edge \"cases\"\n");
  EXPECT_EQ(parsed->rows()[0].system, "back\\slash\ttab");
  EXPECT_EQ(parsed->rows()[0].category, "quote \" newline \n");
}

TEST(BenchReportTest, EmptyReportIsValidJson) {
  Report report("empty");
  auto parsed = Report::FromJson(report.ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->bench(), "empty");
  EXPECT_TRUE(parsed->rows().empty());
}

TEST(BenchReportTest, NonFiniteTimesSerializeAsZero) {
  Report report("nan");
  ReportRow row;
  row.time_s = std::nan("");
  row.comm_mb = std::numeric_limits<double>::infinity();
  report.Add(row);
  auto parsed = Report::FromJson(report.ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->rows()[0].time_s, 0.0);
  EXPECT_EQ(parsed->rows()[0].comm_mb, 0.0);
}

TEST(BenchReportTest, UnknownKeysAreSkipped) {
  const std::string json =
      "{\"bench\": \"x\", \"schema_version\": 2, \"extra\": {\"a\": [1, 2]},"
      " \"rows\": [{\"system\": \"s\", \"future_field\": null,"
      " \"time_s\": 3.5}]}";
  auto parsed = Report::FromJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->bench(), "x");
  ASSERT_EQ(parsed->rows().size(), 1u);
  EXPECT_EQ(parsed->rows()[0].system, "s");
  EXPECT_EQ(parsed->rows()[0].time_s, 3.5);
}

TEST(BenchReportTest, RejectsMalformedJson) {
  EXPECT_FALSE(Report::FromJson("").ok());
  EXPECT_FALSE(Report::FromJson("{\"bench\": \"x\"").ok());
  EXPECT_FALSE(Report::FromJson("{\"rows\": [{]}").ok());
  EXPECT_FALSE(Report::FromJson("{} trailing").ok());
}

TEST(BenchReportTest, WriteFileRoundTrips) {
  const Report report = MakeSampleReport();
  const std::string path =
      ::testing::TempDir() + "/bench_report_test_out.json";
  Status s = report.WriteFile(path);
  ASSERT_TRUE(s.ok()) << s.ToString();
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), report.ToJson());
  auto parsed = Report::FromJson(buffer.str());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->rows().size(), 2u);
  std::remove(path.c_str());
}

// Regression for the ASSERT_OK_AND_ASSIGN __LINE__-pasting fix: two uses
// in one test body must not collide on the temporary's name.
TEST(TestUtilMacroTest, AssertOkAndAssignTwiceInOneBody) {
  int first = 0;
  int second = 0;
  ASSERT_OK_AND_ASSIGN(first, Result<int>(41));
  ASSERT_OK_AND_ASSIGN(second, Result<int>(first + 1));
  EXPECT_EQ(second, 42);
}

}  // namespace
}  // namespace bench
}  // namespace grape
