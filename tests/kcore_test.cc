#include <algorithm>
#include <string>
#include <tuple>

#include "apps/kcore.h"
#include "core/engine.h"
#include "graph/generators.h"
#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace grape {
namespace {

TEST(SeqKCoreTest, KnownDecompositions) {
  // A 4-clique: every vertex has coreness 3.
  auto k4 = GenerateComplete(4, /*directed=*/false);
  ASSERT_TRUE(k4.ok());
  for (uint32_t c : SeqKCore(*k4)) EXPECT_EQ(c, 3u);

  // A path: coreness 1 everywhere.
  auto path = GeneratePath(10);
  ASSERT_TRUE(path.ok());
  for (uint32_t c : SeqKCore(*path)) EXPECT_EQ(c, 1u);

  // A star: hub and leaves all peel at 1.
  auto star = GenerateStar(6);
  ASSERT_TRUE(star.ok());
  for (uint32_t c : SeqKCore(*star)) EXPECT_EQ(c, 1u);

  // Clique with a pendant tail: clique stays at 3, tail at 1.
  GraphBuilder builder(false);
  for (VertexId u = 0; u < 4; ++u) {
    for (VertexId v = u + 1; v < 4; ++v) builder.AddEdge(u, v);
  }
  builder.AddEdge(3, 4);
  builder.AddEdge(4, 5);
  auto g = std::move(builder).Build();
  ASSERT_TRUE(g.ok());
  auto core = SeqKCore(*g);
  EXPECT_EQ(core[0], 3u);
  EXPECT_EQ(core[3], 3u);
  EXPECT_EQ(core[4], 1u);
  EXPECT_EQ(core[5], 1u);
}

TEST(SeqKCoreTest, CorenessIsAtMostDegree) {
  auto g = GenerateErdosRenyi(300, 1500, false, 1401);
  ASSERT_TRUE(g.ok());
  auto core = SeqKCore(*g);
  for (VertexId v = 0; v < g->num_vertices(); ++v) {
    EXPECT_LE(core[v], g->OutDegree(v));
  }
}

using KCoreParam = std::tuple<std::string, FragmentId>;

class KCoreMatrixTest : public ::testing::TestWithParam<KCoreParam> {};

TEST_P(KCoreMatrixTest, MatchesPeeling) {
  const auto& [strategy, nfrag] = GetParam();
  auto g = GenerateErdosRenyi(400, 3000, /*directed=*/false, 1409);
  ASSERT_TRUE(g.ok());
  auto expected = SeqKCore(*g);

  FragmentedGraph fg = testing::MakeFragments(*g, strategy, nfrag);
  GrapeEngine<KCoreApp> engine(fg, KCoreApp{});
  auto out = engine.Run(KCoreQuery{});
  ASSERT_TRUE(out.ok()) << out.status();
  ASSERT_EQ(out->coreness.size(), g->num_vertices());
  for (VertexId v = 0; v < g->num_vertices(); ++v) {
    EXPECT_EQ(out->coreness[v], expected[v]) << "vertex " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, KCoreMatrixTest,
    ::testing::Combine(::testing::Values("hash", "metis", "ldg"),
                       ::testing::Values(FragmentId{1}, FragmentId{4},
                                         FragmentId{8})),
    [](const auto& info) {
      return std::get<0>(info.param) + "_" +
             std::to_string(std::get<1>(info.param));
    });

TEST(KCoreTest, DirectedUsesUndirectedView) {
  RMatOptions opts;
  opts.scale = 8;
  opts.edge_factor = 6;
  opts.seed = 1423;
  auto g = GenerateRMat(opts);
  ASSERT_TRUE(g.ok());
  auto expected = SeqKCore(*g);
  FragmentedGraph fg = testing::MakeFragments(*g, "hash", 5);
  GrapeEngine<KCoreApp> engine(fg, KCoreApp{});
  auto out = engine.Run(KCoreQuery{});
  ASSERT_TRUE(out.ok());
  for (VertexId v = 0; v < g->num_vertices(); ++v) {
    EXPECT_EQ(out->coreness[v], expected[v]);
  }
}

TEST(KCoreTest, BoundsDecreaseMonotonically) {
  auto g = GenerateErdosRenyi(300, 2500, false, 1427);
  ASSERT_TRUE(g.ok());
  FragmentedGraph fg = testing::MakeFragments(*g, "hash", 6);
  EngineOptions opts;
  opts.check_monotonicity = true;
  GrapeEngine<KCoreApp> engine(fg, KCoreApp{}, opts);
  ASSERT_TRUE(engine.Run(KCoreQuery{}).ok());
  EXPECT_EQ(engine.metrics().monotonicity_violations, 0u);
}

TEST(KCoreTest, AblationAgreesWithIncremental) {
  auto g = GenerateErdosRenyi(250, 1800, false, 1429);
  ASSERT_TRUE(g.ok());
  FragmentedGraph fg = testing::MakeFragments(*g, "hash", 4);
  GrapeEngine<KCoreApp> inc(fg, KCoreApp{});
  auto inc_out = inc.Run(KCoreQuery{});
  ASSERT_TRUE(inc_out.ok());
  EngineOptions opts;
  opts.incremental = false;
  GrapeEngine<KCoreApp> full(fg, KCoreApp{}, opts);
  auto full_out = full.Run(KCoreQuery{});
  ASSERT_TRUE(full_out.ok());
  EXPECT_EQ(inc_out->coreness, full_out->coreness);
}

}  // namespace
}  // namespace grape
