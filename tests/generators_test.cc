#include <algorithm>
#include <unordered_set>

#include "graph/generators.h"
#include "gtest/gtest.h"

namespace grape {
namespace {

TEST(GeneratorsTest, ErdosRenyiShape) {
  auto g = GenerateErdosRenyi(100, 500, /*directed=*/true, /*seed=*/1);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_vertices(), 100u);
  EXPECT_EQ(g->num_edges(), 500u);
  // No self loops.
  for (VertexId v = 0; v < 100; ++v) {
    for (const Neighbor& nb : g->OutNeighbors(v)) {
      EXPECT_NE(nb.vertex, v);
    }
  }
}

TEST(GeneratorsTest, ErdosRenyiDeterministic) {
  auto a = GenerateErdosRenyi(50, 200, true, 7);
  auto b = GenerateErdosRenyi(50, 200, true, 7);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->ToEdgeList().size(), b->ToEdgeList().size());
  auto ea = a->ToEdgeList();
  auto eb = b->ToEdgeList();
  for (size_t i = 0; i < ea.size(); ++i) EXPECT_EQ(ea[i], eb[i]);
}

TEST(GeneratorsTest, ErdosRenyiRejectsImpossibleDensity) {
  auto g = GenerateErdosRenyi(3, 100, false, 1);
  EXPECT_FALSE(g.ok());
}

TEST(GeneratorsTest, RMatShapeAndSkew) {
  RMatOptions opts;
  opts.scale = 10;
  opts.edge_factor = 8;
  opts.seed = 3;
  auto g = GenerateRMat(opts);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_vertices(), 1024u);
  EXPECT_EQ(g->num_edges(), 8192u);
  // Power-law-ish: max degree far above average (8).
  size_t max_deg = 0;
  for (VertexId v = 0; v < g->num_vertices(); ++v) {
    max_deg = std::max(max_deg, g->OutDegree(v));
  }
  EXPECT_GT(max_deg, 40u);
}

TEST(GeneratorsTest, RMatValidatesOptions) {
  RMatOptions opts;
  opts.scale = 0;
  EXPECT_FALSE(GenerateRMat(opts).ok());
  opts.scale = 10;
  opts.a = 1.5;
  EXPECT_FALSE(GenerateRMat(opts).ok());
}

TEST(GeneratorsTest, GridRoadStructure) {
  auto g = GenerateGridRoad(10, 20, /*seed=*/5);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_vertices(), 200u);
  // Interior vertex degree 4 (both directions per segment).
  // Vertex (5, 10) = 5*20+10.
  EXPECT_EQ(g->OutDegree(5 * 20 + 10), 4u);
  // Corner degree 2.
  EXPECT_EQ(g->OutDegree(0), 2u);
  // Each segment is bidirectional: in-degree == out-degree.
  for (VertexId v = 0; v < g->num_vertices(); ++v) {
    EXPECT_EQ(g->OutDegree(v), g->InDegree(v));
  }
}

TEST(GeneratorsTest, GridRoadShortcuts) {
  auto base = GenerateGridRoad(10, 10, 5, 10.0, 0.0);
  auto with = GenerateGridRoad(10, 10, 5, 10.0, 0.5);
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE(with.ok());
  EXPECT_GT(with->num_edges(), base->num_edges());
}

TEST(GeneratorsTest, SmallDeterministicGraphs) {
  auto path = GeneratePath(5);
  ASSERT_TRUE(path.ok());
  EXPECT_EQ(path->num_vertices(), 5u);
  EXPECT_EQ(path->num_edges(), 8u);  // undirected arcs

  auto cycle = GenerateCycle(6);
  ASSERT_TRUE(cycle.ok());
  EXPECT_EQ(cycle->num_edges(), 6u);

  auto star = GenerateStar(4);
  ASSERT_TRUE(star.ok());
  EXPECT_EQ(star->num_vertices(), 5u);
  EXPECT_EQ(star->OutDegree(0), 4u);

  auto complete = GenerateComplete(5, /*directed=*/true);
  ASSERT_TRUE(complete.ok());
  EXPECT_EQ(complete->num_edges(), 20u);
}

TEST(GeneratorsTest, RandomTreeConnected) {
  auto g = GenerateRandomTree(100, 11);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_edges(), 198u);  // (n-1) undirected arcs
  // A tree is connected: BFS reaches everything.
  std::vector<bool> seen(100, false);
  std::vector<VertexId> stack = {0};
  seen[0] = true;
  size_t visited = 1;
  while (!stack.empty()) {
    VertexId v = stack.back();
    stack.pop_back();
    for (const Neighbor& nb : g->OutNeighbors(v)) {
      if (!seen[nb.vertex]) {
        seen[nb.vertex] = true;
        ++visited;
        stack.push_back(nb.vertex);
      }
    }
  }
  EXPECT_EQ(visited, 100u);
}

TEST(GeneratorsTest, BipartiteRatings) {
  BipartiteOptions opts;
  opts.num_users = 100;
  opts.num_items = 20;
  opts.ratings_per_user = 5;
  auto g = GenerateBipartiteRatings(opts);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_vertices(), 120u);
  EXPECT_EQ(g->num_edges(), 2u * 100 * 5);
  // Strictly bipartite with ratings in [1, 5].
  for (VertexId u = 0; u < 100; ++u) {
    EXPECT_EQ(g->vertex_label(u), kPersonLabel);
    for (const Neighbor& nb : g->OutNeighbors(u)) {
      EXPECT_GE(nb.vertex, 100u);
      EXPECT_GE(nb.weight, 1.0);
      EXPECT_LE(nb.weight, 5.0);
    }
  }
  for (VertexId i = 100; i < 120; ++i) {
    EXPECT_EQ(g->vertex_label(i), kItemLabel);
  }
}

TEST(GeneratorsTest, BipartiteValidation) {
  BipartiteOptions opts;
  opts.num_items = 3;
  opts.ratings_per_user = 10;
  EXPECT_FALSE(GenerateBipartiteRatings(opts).ok());
}

TEST(GeneratorsTest, LabeledGraphLabelRange) {
  LabeledGraphOptions opts;
  opts.scale = 8;
  opts.num_vertex_labels = 4;
  auto g = GenerateLabeledGraph(opts);
  ASSERT_TRUE(g.ok());
  ASSERT_TRUE(g->has_vertex_labels());
  for (VertexId v = 0; v < g->num_vertices(); ++v) {
    EXPECT_LT(g->vertex_label(v), 4u);
  }
}

TEST(GeneratorsTest, SocialGraphHasPlantedCustomers) {
  SocialGraphOptions opts;
  opts.num_persons = 2000;
  opts.num_items = 10;
  opts.seed = 21;
  auto g = GenerateSocialGraph(opts);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_vertices(), 2010u);

  // Count persons whose followees >= 80% recommend item 0 with no bad rater.
  const VertexId item0 = 2000;
  auto flags = [&](VertexId p) {
    int f = 0;
    for (const Neighbor& nb : g->OutNeighbors(p)) {
      if (nb.vertex == item0 && nb.label == kRecommendsLabel) f |= 1;
      if (nb.vertex == item0 && nb.label == kRatesBadLabel) f |= 2;
    }
    return f;
  };
  size_t candidates = 0;
  for (VertexId p = 0; p < 2000; ++p) {
    size_t follows = 0;
    size_t recommending = 0;
    bool bad = false;
    for (const Neighbor& nb : g->OutNeighbors(p)) {
      if (nb.label != kFollowsLabel) continue;
      ++follows;
      int fl = flags(nb.vertex);
      if (fl & 1) ++recommending;
      if (fl & 2) bad = true;
    }
    if (!bad && follows >= 3 &&
        static_cast<double>(recommending) / follows >= 0.8) {
      ++candidates;
    }
  }
  EXPECT_GT(candidates, 0u);
}

}  // namespace
}  // namespace grape
