// Round-trip fuzzing for the wire codec under the transport: random
// (dst_lid, value) record blocks encode → frame → decode bit-identically,
// across the POD fast path (two memcpy spans) and the generic per-record
// path, including the zero-record and maximum-size blocks the socket
// transport can legally carry. Also drives the corruption paths: truncated
// frames and oversized counts must surface as Status, never as UB.

#include <cstring>
#include <string>
#include <vector>

#include "core/codec.h"
#include "gtest/gtest.h"
#include "util/random.h"
#include "util/serializer.h"

namespace grape {
namespace {

/// Encodes a staged block the way FlushWorker does, wraps it in a frame the
/// way SocketTransport does, then parses both layers back.
template <typename V>
void RoundTripThroughFrame(const std::vector<uint32_t>& lids,
                           const std::vector<V>& values, uint32_t from,
                           uint32_t to, uint32_t tag) {
  ASSERT_EQ(lids.size(), values.size());
  RecordBlock<V> block;
  for (size_t k = 0; k < lids.size(); ++k) block.Append(lids[k], values[k]);

  Encoder enc;
  EncodeRecordBlock(enc, block);
  std::vector<uint8_t> payload = enc.TakeBuffer();

  // Frame layer: header + payload, the socket transport's wire unit.
  std::vector<uint8_t> wire(kFrameHeaderBytes + payload.size());
  FrameHeader h{from, to, tag, static_cast<uint32_t>(payload.size())};
  EncodeFrameHeader(h, wire.data());
  std::memcpy(wire.data() + kFrameHeaderBytes, payload.data(),
              payload.size());

  FrameHeader parsed;
  ASSERT_TRUE(DecodeFrameHeader(wire.data(), wire.size(), &parsed).ok());
  EXPECT_EQ(parsed.from, from);
  EXPECT_EQ(parsed.to, to);
  EXPECT_EQ(parsed.tag, tag);
  ASSERT_EQ(parsed.payload_len, payload.size());

  Decoder dec(wire.data() + kFrameHeaderBytes, parsed.payload_len);
  std::vector<uint32_t> got_lids;
  std::vector<V> got_values;
  ASSERT_TRUE(DecodeRecordBlock(dec, &got_lids, &got_values).ok());
  EXPECT_TRUE(dec.AtEnd()) << "decoder left trailing bytes";
  EXPECT_EQ(got_lids, lids);
  EXPECT_EQ(got_values, values);
}

TEST(CodecFuzzTest, RandomPodBatchesRoundTrip) {
  Rng rng(0xfeedULL);
  for (int iter = 0; iter < 200; ++iter) {
    const size_t n = rng.NextBounded(512);
    std::vector<uint32_t> lids(n);
    std::vector<double> values(n);
    for (size_t k = 0; k < n; ++k) {
      lids[k] = static_cast<uint32_t>(rng.NextUint64());
      // Raw bit patterns, including ones that look like NaN/inf: the wire
      // must carry bits, not numbers.
      uint64_t bits = rng.NextUint64();
      std::memcpy(&values[k], &bits, sizeof(bits));
    }
    std::vector<double> sent = values;
    RecordBlock<double> block;
    for (size_t k = 0; k < n; ++k) block.Append(lids[k], values[k]);
    Encoder enc;
    EncodeRecordBlock(enc, block);
    Decoder dec(enc.buffer());
    std::vector<uint32_t> got_lids;
    std::vector<double> got_values;
    ASSERT_TRUE(DecodeRecordBlock(dec, &got_lids, &got_values).ok());
    EXPECT_EQ(got_lids, lids);
    // Bit-compare, not ==, so NaN patterns count as equal.
    ASSERT_EQ(got_values.size(), sent.size());
    EXPECT_EQ(std::memcmp(got_values.data(), sent.data(),
                          sent.size() * sizeof(double)),
              0);
  }
}

TEST(CodecFuzzTest, RandomIntBatchesRoundTripThroughFrames) {
  Rng rng(0xabcdULL);
  for (int iter = 0; iter < 100; ++iter) {
    const size_t n = rng.NextBounded(256);
    std::vector<uint32_t> lids(n);
    std::vector<uint32_t> values(n);
    for (size_t k = 0; k < n; ++k) {
      lids[k] = static_cast<uint32_t>(rng.NextUint64());
      values[k] = static_cast<uint32_t>(rng.NextUint64());
    }
    RoundTripThroughFrame(lids, values,
                          static_cast<uint32_t>(rng.NextBounded(16)),
                          static_cast<uint32_t>(rng.NextBounded(16)),
                          static_cast<uint32_t>(rng.NextBounded(8)));
  }
}

TEST(CodecFuzzTest, NonPodValuesRoundTripThroughFrames) {
  // Pairs route through the generic per-record encoder (staged by
  // pointer), the path non-arithmetic apps use.
  Rng rng(0x1717ULL);
  for (int iter = 0; iter < 50; ++iter) {
    const size_t n = rng.NextBounded(64);
    std::vector<uint32_t> lids(n);
    std::vector<std::pair<uint32_t, double>> values(n);
    for (size_t k = 0; k < n; ++k) {
      lids[k] = static_cast<uint32_t>(rng.NextUint64());
      values[k] = {static_cast<uint32_t>(rng.NextUint64()),
                   rng.NextDouble()};
    }
    RoundTripThroughFrame(lids, values, 1, 2, 3);
  }
}

TEST(CodecFuzzTest, ZeroRecordBlockRoundTrips) {
  RoundTripThroughFrame<double>({}, {}, 0, 1, kFrameHeaderBytes);
  // And with a zero-length payload framed directly.
  uint8_t header[kFrameHeaderBytes];
  EncodeFrameHeader(FrameHeader{3, 4, 5, 0}, header);
  FrameHeader parsed;
  ASSERT_TRUE(DecodeFrameHeader(header, sizeof(header), &parsed).ok());
  EXPECT_EQ(parsed.payload_len, 0u);
}

TEST(CodecFuzzTest, MaxSizeBlockRoundTrips) {
  // The largest batch a real superstep could plausibly stage: every lid of
  // a large fragment. 1M records = 12 MB encoded, above the socket
  // relay's chunk size, so this also sizes the conformance large-payload
  // case honestly.
  const size_t n = 1u << 20;
  std::vector<uint32_t> lids(n);
  std::vector<double> values(n);
  for (size_t k = 0; k < n; ++k) {
    lids[k] = static_cast<uint32_t>(k);
    values[k] = static_cast<double>(k) * 0.5;
  }
  RoundTripThroughFrame(lids, values, 2, 7, 1);
}

TEST(CodecFuzzTest, TruncatedBuffersSurfaceAsStatusEverywhere) {
  // Build one valid payload, then decode every proper prefix: all must
  // fail cleanly (or succeed only at full length) — never crash.
  const size_t n = 17;
  RecordBlock<double> block;
  for (size_t k = 0; k < n; ++k) {
    block.Append(static_cast<uint32_t>(k), 1.5 * static_cast<double>(k));
  }
  Encoder enc;
  EncodeRecordBlock(enc, block);
  const std::vector<uint8_t>& full = enc.buffer();
  for (size_t cut = 0; cut < full.size(); ++cut) {
    Decoder dec(full.data(), cut);
    std::vector<uint32_t> lids;
    std::vector<double> values;
    Status s = DecodeRecordBlock(dec, &lids, &values);
    EXPECT_FALSE(s.ok()) << "prefix of " << cut << " bytes decoded";
  }
}

TEST(CodecFuzzTest, CorruptCountsAreRejectedBeforeAllocating) {
  // varint count far beyond the buffer: must return Corruption without
  // attempting a gigantic reserve.
  Encoder enc;
  enc.WriteVarint(uint64_t{1} << 40);
  enc.WriteU32(1);
  {
    Decoder dec(enc.buffer());
    std::vector<uint32_t> lids;
    std::vector<double> values;
    EXPECT_TRUE(DecodeRecordBlock(dec, &lids, &values).IsCorruption());
  }
  {
    Decoder dec(enc.buffer());
    std::vector<uint32_t> lids;
    std::vector<std::string> values;  // non-POD path
    EXPECT_TRUE(DecodeRecordBlock(dec, &lids, &values).IsCorruption());
  }
}

TEST(CodecFuzzTest, FrameHeaderRejectsTruncationAndAbsurdLengths) {
  uint8_t header[kFrameHeaderBytes];
  EncodeFrameHeader(FrameHeader{1, 2, 3, 4}, header);
  FrameHeader parsed;
  for (size_t cut = 0; cut < kFrameHeaderBytes; ++cut) {
    EXPECT_TRUE(DecodeFrameHeader(header, cut, &parsed).IsCorruption());
  }
  EncodeFrameHeader(FrameHeader{1, 2, 3, kMaxFramePayloadBytes + 1}, header);
  EXPECT_TRUE(
      DecodeFrameHeader(header, sizeof(header), &parsed).IsCorruption());
}

TEST(CodecFuzzTest, FrameHeaderIsExactlySixteenLittleEndianBytes) {
  // The 16-byte envelope is load-bearing: CommStats charges it per
  // message, and the golden test equates counted bytes with socket wire
  // bytes. Freeze the layout.
  uint8_t header[kFrameHeaderBytes];
  EncodeFrameHeader(FrameHeader{0x04030201u, 0x08070605u, 0x0c0b0a09u,
                                0x100f0e0du},
                    header);
  const uint8_t expected[kFrameHeaderBytes] = {
      0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08,
      0x09, 0x0a, 0x0b, 0x0c, 0x0d, 0x0e, 0x0f, 0x10};
  EXPECT_EQ(std::memcmp(header, expected, sizeof(header)), 0);
}

}  // namespace
}  // namespace grape
