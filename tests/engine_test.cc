#include <string>

#include "apps/cc.h"
#include "apps/pagerank.h"
#include "apps/sssp.h"
#include "core/engine.h"
#include "graph/generators.h"
#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace grape {
namespace {

TEST(EngineTest, MaxSuperstepsCapIsHonored) {
  // PageRank with an impossible epsilon would iterate forever without the
  // engine's cap; max_supersteps must stop it.
  RMatOptions opts;
  opts.scale = 7;
  opts.seed = 1001;
  auto g = GenerateRMat(opts);
  ASSERT_TRUE(g.ok());
  FragmentedGraph fg = testing::MakeFragments(*g, "hash", 4);
  PageRankQuery query;
  query.max_iterations = 1000000;
  query.epsilon = 0.0;
  EngineOptions eopts;
  eopts.max_supersteps = 5;
  GrapeEngine<PageRankApp> engine(fg, PageRankApp{}, eopts);
  ASSERT_TRUE(engine.Run(query).ok());
  EXPECT_EQ(engine.metrics().supersteps, 5u);
}

TEST(EngineTest, ExplicitThreadCount) {
  auto g = GenerateGridRoad(20, 20, 1009);
  ASSERT_TRUE(g.ok());
  FragmentedGraph fg = testing::MakeFragments(*g, "grid2d", 8);
  EngineOptions eopts;
  eopts.num_threads = 2;  // fewer threads than fragments must still work
  GrapeEngine<SsspApp> engine(fg, SsspApp{}, eopts);
  auto out = engine.Run(SsspQuery{0});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->dist[0], 0.0);
}

TEST(EngineTest, MoreFragmentsThanVertices) {
  auto g = GeneratePath(3);
  ASSERT_TRUE(g.ok());
  FragmentedGraph fg = testing::MakeFragments(*g, "hash", 10);
  GrapeEngine<SsspApp> engine(fg, SsspApp{});
  auto out = engine.Run(SsspQuery{0});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->dist[2], 2.0);
}

TEST(EngineTest, SourceOutsideGraphReachesNothing) {
  auto g = GeneratePath(5, /*directed=*/true);
  ASSERT_TRUE(g.ok());
  FragmentedGraph fg = testing::MakeFragments(*g, "hash", 2);
  GrapeEngine<SsspApp> engine(fg, SsspApp{});
  auto out = engine.Run(SsspQuery{999});  // not a vertex
  ASSERT_TRUE(out.ok());
  for (double d : out->dist) EXPECT_EQ(d, kInfDistance);
  EXPECT_LE(engine.metrics().supersteps, 2u);
}

TEST(EngineTest, ParamsAccessorExposesConvergedValues) {
  auto g = GeneratePath(6, /*directed=*/true);
  ASSERT_TRUE(g.ok());
  FragmentedGraph fg = testing::MakeFragments(*g, "range", 2);
  GrapeEngine<SsspApp> engine(fg, SsspApp{});
  ASSERT_TRUE(engine.Run(SsspQuery{0}).ok());
  for (FragmentId i = 0; i < fg.num_fragments(); ++i) {
    const Fragment& frag = fg.fragments[i];
    for (LocalId lid = 0; lid < frag.num_inner(); ++lid) {
      EXPECT_EQ(engine.params(i).Get(lid),
                static_cast<double>(frag.Gid(lid)));
    }
  }
}

TEST(EngineTest, RoundMetricsDecayMonotonicallyForSssp) {
  // The Fig. 1 fixed-point shape: once IncEval starts, per-round update
  // counts trend down on a road network (wavefront shrinks at the end).
  auto g = GenerateGridRoad(40, 40, 1013);
  ASSERT_TRUE(g.ok());
  FragmentedGraph fg = testing::MakeFragments(*g, "grid2d", 4);
  GrapeEngine<SsspApp> engine(fg, SsspApp{});
  ASSERT_TRUE(engine.Run(SsspQuery{0}).ok());
  const auto& rounds = engine.metrics().rounds;
  ASSERT_GE(rounds.size(), 3u);
  // Final round ships nothing (fixed point).
  EXPECT_EQ(rounds.back().updated_params, 0u);
}

TEST(EngineTest, CheckMonotonicityCountsViolationsForNonMonotonicApp) {
  // PageRank's contributions move both ways; with a *monotonic* aggregator
  // this would be flagged. Its OverwriteAggregator is declared
  // non-monotonic, so the engine must report zero violations (the check
  // only applies where the Assurance Theorem does).
  RMatOptions opts;
  opts.scale = 7;
  opts.seed = 1019;
  auto g = GenerateRMat(opts);
  ASSERT_TRUE(g.ok());
  FragmentedGraph fg = testing::MakeFragments(*g, "hash", 3);
  PageRankQuery query;
  query.max_iterations = 5;
  EngineOptions eopts;
  eopts.check_monotonicity = true;
  GrapeEngine<PageRankApp> engine(fg, PageRankApp{}, eopts);
  ASSERT_TRUE(engine.Run(query).ok());
  EXPECT_EQ(engine.metrics().monotonicity_violations, 0u);
}

TEST(EngineTest, CcOnEmptyEdgeSet) {
  GraphBuilder builder(false);
  for (VertexId v = 0; v < 7; ++v) builder.AddVertex(v);
  auto g = std::move(builder).Build();
  ASSERT_TRUE(g.ok());
  FragmentedGraph fg = testing::MakeFragments(*g, "hash", 3);
  GrapeEngine<CcApp> engine(fg, CcApp{});
  auto out = engine.Run(CcQuery{});
  ASSERT_TRUE(out.ok());
  for (VertexId v = 0; v < 7; ++v) EXPECT_EQ(out->label[v], v);
}

TEST(EngineTest, BytesGrowWithWorkerCount) {
  // More fragments => more border => more communication (same query).
  auto g = GenerateGridRoad(40, 40, 1021);
  ASSERT_TRUE(g.ok());
  uint64_t prev = 0;
  for (FragmentId n : {1u, 4u, 16u}) {
    FragmentedGraph fg = testing::MakeFragments(*g, "grid2d", n);
    GrapeEngine<SsspApp> engine(fg, SsspApp{});
    ASSERT_TRUE(engine.Run(SsspQuery{0}).ok());
    EXPECT_GE(engine.metrics().bytes, prev);
    prev = engine.metrics().bytes;
  }
  EXPECT_GT(prev, 0u);
}

TEST(EngineTest, AblationTouchesWholeFragment) {
  // In full-re-evaluation mode the per-round updated count equals the
  // fragment sizes, demonstrating what boundedness saves.
  auto g = GenerateGridRoad(30, 30, 1031);
  ASSERT_TRUE(g.ok());
  FragmentedGraph fg = testing::MakeFragments(*g, "grid2d", 4);

  GrapeEngine<SsspApp> inc(fg, SsspApp{});
  ASSERT_TRUE(inc.Run(SsspQuery{0}).ok());
  EngineOptions eopts;
  eopts.incremental = false;
  GrapeEngine<SsspApp> full(fg, SsspApp{}, eopts);
  ASSERT_TRUE(full.Run(SsspQuery{0}).ok());

  uint64_t inc_updates = 0;
  for (const auto& r : inc.metrics().rounds) inc_updates += r.updated_params;
  uint64_t full_updates = 0;
  for (const auto& r : full.metrics().rounds) {
    full_updates += r.updated_params;
  }
  EXPECT_GT(full_updates, inc_updates);
}

}  // namespace
}  // namespace grape
