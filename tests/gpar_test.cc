#include <algorithm>
#include <map>

#include "apps/gpar.h"
#include "core/engine.h"
#include "graph/generators.h"
#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace grape {
namespace {

/// Brute-force evaluation of the demo GPAR over the whole graph.
std::vector<GparCandidate> BruteForceGpar(const Graph& g,
                                          const GparQuery& query) {
  std::vector<GparCandidate> out;
  auto flags = [&](VertexId p) {
    uint8_t f = 0;
    for (const Neighbor& nb : g.OutNeighbors(p)) {
      if (nb.vertex != query.item) continue;
      if (nb.label == kRecommendsLabel) f |= GparApp::kRecommendsBit;
      if (nb.label == kRatesBadLabel) f |= GparApp::kRatesBadBit;
    }
    return f;
  };
  for (VertexId p = 0; p < g.num_vertices(); ++p) {
    if (g.vertex_label(p) != kPersonLabel) continue;
    uint32_t followees = 0;
    uint32_t recommending = 0;
    bool bad = false;
    for (const Neighbor& nb : g.OutNeighbors(p)) {
      if (nb.label != kFollowsLabel) continue;
      ++followees;
      uint8_t f = flags(nb.vertex);
      if (f & GparApp::kRecommendsBit) ++recommending;
      if (f & GparApp::kRatesBadBit) bad = true;
    }
    if (bad || followees < query.min_followees) continue;
    double confidence = static_cast<double>(recommending) / followees;
    if (confidence < query.support) continue;
    out.push_back({p, confidence, followees, recommending});
  }
  std::sort(out.begin(), out.end(),
            [](const GparCandidate& a, const GparCandidate& b) {
              if (a.confidence != b.confidence) {
                return a.confidence > b.confidence;
              }
              return a.person < b.person;
            });
  return out;
}

class GparMatrixTest : public ::testing::TestWithParam<FragmentId> {};

TEST_P(GparMatrixTest, MatchesBruteForce) {
  SocialGraphOptions opts;
  opts.num_persons = 3000;
  opts.num_items = 8;
  opts.seed = 601;
  auto g = GenerateSocialGraph(opts);
  ASSERT_TRUE(g.ok());

  GparQuery query;
  query.item = 3000;  // item 0's gid
  query.support = 0.8;
  query.min_followees = 3;
  std::vector<GparCandidate> expected = BruteForceGpar(*g, query);

  FragmentedGraph fg = testing::MakeFragments(*g, "hash", GetParam());
  GrapeEngine<GparApp> engine(fg, GparApp{});
  auto out = engine.Run(query);
  ASSERT_TRUE(out.ok()) << out.status();
  ASSERT_EQ(out->candidates.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(out->candidates[i].person, expected[i].person);
    EXPECT_DOUBLE_EQ(out->candidates[i].confidence, expected[i].confidence);
    EXPECT_EQ(out->candidates[i].followees, expected[i].followees);
    EXPECT_EQ(out->candidates[i].recommending, expected[i].recommending);
  }
  EXPECT_FALSE(out->candidates.empty()) << "planted customers not found";
}

INSTANTIATE_TEST_SUITE_P(Workers, GparMatrixTest,
                         ::testing::Values(FragmentId{1}, FragmentId{4},
                                           FragmentId{8}),
                         [](const auto& info) {
                           return "n" + std::to_string(info.param);
                         });

TEST(GparTest, TerminatesInTwoOrThreeSupersteps) {
  SocialGraphOptions opts;
  opts.num_persons = 1000;
  opts.num_items = 4;
  opts.seed = 607;
  auto g = GenerateSocialGraph(opts);
  ASSERT_TRUE(g.ok());
  FragmentedGraph fg = testing::MakeFragments(*g, "hash", 6);
  GparQuery query;
  query.item = 1000;
  GrapeEngine<GparApp> engine(fg, GparApp{});
  ASSERT_TRUE(engine.Run(query).ok());
  // PEval + one mirror-refresh IncEval (+ a possible drain round).
  EXPECT_LE(engine.metrics().supersteps, 3u);
}

TEST(GparTest, SupportThresholdFilters) {
  SocialGraphOptions opts;
  opts.num_persons = 2000;
  opts.num_items = 4;
  opts.seed = 613;
  auto g = GenerateSocialGraph(opts);
  ASSERT_TRUE(g.ok());
  FragmentedGraph fg = testing::MakeFragments(*g, "metis", 4);

  auto count_at = [&](double support) {
    GparQuery query;
    query.item = 2000;
    query.support = support;
    GrapeEngine<GparApp> engine(fg, GparApp{});
    auto out = engine.Run(query);
    EXPECT_TRUE(out.ok());
    for (const GparCandidate& c : out->candidates) {
      EXPECT_GE(c.confidence, support);
    }
    return out->candidates.size();
  };
  size_t strict = count_at(0.9);
  size_t loose = count_at(0.5);
  EXPECT_LE(strict, loose);
  EXPECT_GT(loose, 0u);
}

TEST(GparTest, RankedByConfidence) {
  SocialGraphOptions opts;
  opts.num_persons = 1500;
  opts.seed = 617;
  auto g = GenerateSocialGraph(opts);
  ASSERT_TRUE(g.ok());
  FragmentedGraph fg = testing::MakeFragments(*g, "hash", 4);
  GparQuery query;
  query.item = 1500;
  query.support = 0.5;
  GrapeEngine<GparApp> engine(fg, GparApp{});
  auto out = engine.Run(query);
  ASSERT_TRUE(out.ok());
  for (size_t i = 1; i < out->candidates.size(); ++i) {
    EXPECT_GE(out->candidates[i - 1].confidence,
              out->candidates[i].confidence);
  }
}

}  // namespace
}  // namespace grape
