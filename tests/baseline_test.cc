#include <cmath>

#include "apps/seq/seq_algorithms.h"
#include "apps/sssp.h"
#include "baseline/block_apps.h"
#include "core/engine.h"
#include "baseline/block_engine.h"
#include "baseline/gas_apps.h"
#include "baseline/gas_engine.h"
#include "baseline/vc_apps.h"
#include "baseline/vc_engine.h"
#include "graph/generators.h"
#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace grape {
namespace {

class BaselineMatrixTest : public ::testing::TestWithParam<FragmentId> {};

TEST_P(BaselineMatrixTest, VertexCentricSsspMatchesDijkstra) {
  auto g = GenerateGridRoad(15, 15, 701);
  ASSERT_TRUE(g.ok());
  FragmentedGraph fg = testing::MakeFragments(*g, "hash", GetParam());
  std::vector<double> expected = SeqDijkstra(*g, 0);

  VertexCentricEngine<VcSssp> engine(fg, VcSssp{0});
  ASSERT_TRUE(engine.Run().ok());
  for (VertexId v = 0; v < g->num_vertices(); ++v) {
    EXPECT_DOUBLE_EQ(engine.ValueOf(v), expected[v]) << "vertex " << v;
  }
}

TEST_P(BaselineMatrixTest, VertexCentricCcMatchesUnionFind) {
  auto g = GenerateErdosRenyi(300, 500, /*directed=*/false, 703);
  ASSERT_TRUE(g.ok());
  FragmentedGraph fg = testing::MakeFragments(*g, "hash", GetParam());
  std::vector<VertexId> expected = SeqConnectedComponents(*g);
  VertexCentricEngine<VcCc> engine(fg, VcCc{});
  ASSERT_TRUE(engine.Run().ok());
  for (VertexId v = 0; v < g->num_vertices(); ++v) {
    EXPECT_EQ(engine.ValueOf(v), expected[v]);
  }
}

TEST_P(BaselineMatrixTest, VertexCentricPageRankMatchesSequential) {
  RMatOptions opts;
  opts.scale = 8;
  opts.edge_factor = 6;
  opts.seed = 709;
  auto g = GenerateRMat(opts);
  ASSERT_TRUE(g.ok());
  FragmentedGraph fg = testing::MakeFragments(*g, "hash", GetParam());
  PageRankConfig config;
  config.max_iterations = 25;
  config.epsilon = 0.0;
  std::vector<double> expected = SeqPageRank(*g, config);
  VertexCentricEngine<VcPageRank> engine(fg, VcPageRank{0.85, 25});
  ASSERT_TRUE(engine.Run().ok());
  for (VertexId v = 0; v < g->num_vertices(); ++v) {
    EXPECT_NEAR(engine.ValueOf(v), expected[v], 1e-10);
  }
}

TEST_P(BaselineMatrixTest, GasSsspMatchesDijkstra) {
  auto g = GenerateGridRoad(12, 18, 719);
  ASSERT_TRUE(g.ok());
  FragmentedGraph fg = testing::MakeFragments(*g, "hash", GetParam());
  std::vector<double> expected = SeqDijkstra(*g, 5);
  GasEngine<GasSssp> engine(fg, GasSssp{5});
  ASSERT_TRUE(engine.Run().ok());
  for (VertexId v = 0; v < g->num_vertices(); ++v) {
    EXPECT_DOUBLE_EQ(engine.ValueOf(v), expected[v]) << "vertex " << v;
  }
}

TEST_P(BaselineMatrixTest, GasCcMatchesUnionFind) {
  RMatOptions opts;
  opts.scale = 8;
  opts.edge_factor = 4;
  opts.seed = 727;
  auto g = GenerateRMat(opts);
  ASSERT_TRUE(g.ok());
  FragmentedGraph fg = testing::MakeFragments(*g, "hash", GetParam());
  std::vector<VertexId> expected = SeqConnectedComponents(*g);
  GasEngine<GasCc> engine(fg, GasCc{});
  ASSERT_TRUE(engine.Run().ok());
  for (VertexId v = 0; v < g->num_vertices(); ++v) {
    EXPECT_EQ(engine.ValueOf(v), expected[v]) << "vertex " << v;
  }
}

TEST_P(BaselineMatrixTest, BlockSsspMatchesDijkstra) {
  auto g = GenerateGridRoad(14, 14, 733);
  ASSERT_TRUE(g.ok());
  FragmentedGraph fg = testing::MakeFragments(*g, "grid2d", GetParam());
  std::vector<double> expected = SeqDijkstra(*g, 0);
  BlockCentricEngine<BlockSssp> engine(fg, BlockSssp{0});
  ASSERT_TRUE(engine.Run().ok());
  for (VertexId v = 0; v < g->num_vertices(); ++v) {
    EXPECT_DOUBLE_EQ(engine.ValueOf(v), expected[v]) << "vertex " << v;
  }
}

TEST_P(BaselineMatrixTest, BlockCcMatchesUnionFind) {
  auto g = GenerateErdosRenyi(250, 400, /*directed=*/false, 739);
  ASSERT_TRUE(g.ok());
  FragmentedGraph fg = testing::MakeFragments(*g, "hash", GetParam());
  std::vector<VertexId> expected = SeqConnectedComponents(*g);
  BlockCentricEngine<BlockCc> engine(fg, BlockCc{});
  ASSERT_TRUE(engine.Run().ok());
  for (VertexId v = 0; v < g->num_vertices(); ++v) {
    EXPECT_EQ(engine.ValueOf(v), expected[v]);
  }
}

INSTANTIATE_TEST_SUITE_P(Workers, BaselineMatrixTest,
                         ::testing::Values(FragmentId{1}, FragmentId{4},
                                           FragmentId{8}),
                         [](const auto& info) {
                           return "n" + std::to_string(info.param);
                         });

TEST(BaselineContrastTest, VertexCentricNeedsManyMoreSuperstepsOnPaths) {
  // A path across 4 range fragments: vertex-centric needs ~n supersteps,
  // block-centric ~fragments, matching the Table 1 mechanism.
  auto g = GeneratePath(200, /*directed=*/true);
  ASSERT_TRUE(g.ok());
  FragmentedGraph fg = testing::MakeFragments(*g, "range", 4);

  VertexCentricEngine<VcSssp> vc(fg, VcSssp{0});
  ASSERT_TRUE(vc.Run().ok());
  BlockCentricEngine<BlockSssp> block(fg, BlockSssp{0});
  ASSERT_TRUE(block.Run().ok());

  EXPECT_GE(vc.metrics().supersteps, 150u);
  EXPECT_LE(block.metrics().supersteps, 8u);
  EXPECT_GT(vc.metrics().vertex_messages,
            block.metrics().vertex_messages * 10);
}

TEST(BaselineContrastTest, Table1CommunicationOrdering) {
  // The paper's headline (Table 1): GRAPE ships less than the block-centric
  // model, which ships far less than per-vertex messaging. Deterministic
  // byte counts make this assertable.
  auto g = GenerateGridRoad(60, 60, 751);
  ASSERT_TRUE(g.ok());
  std::vector<double> expected = SeqDijkstra(*g, 0);

  FragmentedGraph hash_fg = testing::MakeFragments(*g, "hash", 8);
  FragmentedGraph voronoi_fg = testing::MakeFragments(*g, "voronoi", 8);
  FragmentedGraph grid_fg = testing::MakeFragments(*g, "grid2d", 8);

  VertexCentricEngine<VcSssp> vc(hash_fg, VcSssp{0});
  ASSERT_TRUE(vc.Run().ok());
  BlockCentricEngine<BlockSssp> block(voronoi_fg, BlockSssp{0});
  ASSERT_TRUE(block.Run().ok());
  GrapeEngine<SsspApp> grape(grid_fg, SsspApp{});
  auto out = grape.Run(SsspQuery{0});
  ASSERT_TRUE(out.ok());
  ASSERT_TRUE(out->dist == expected);

  EXPECT_LT(grape.metrics().bytes, block.metrics().bytes);
  EXPECT_LT(block.metrics().bytes, vc.metrics().bytes);
  // And the superstep gap: whole-fragment evaluation needs orders of
  // magnitude fewer rounds than per-vertex propagation.
  EXPECT_LT(grape.metrics().supersteps * 10, vc.metrics().supersteps);
}

TEST(BaselineContrastTest, CombinerReducesVertexMessages) {
  RMatOptions opts;
  opts.scale = 8;
  opts.edge_factor = 8;
  opts.seed = 743;
  auto g = GenerateRMat(opts);
  ASSERT_TRUE(g.ok());
  FragmentedGraph fg = testing::MakeFragments(*g, "hash", 4);
  VertexCentricEngine<VcCc> engine(fg, VcCc{});
  ASSERT_TRUE(engine.Run().ok());
  // With min-combining, logical messages are far below raw edge traffic
  // (2 * |E| * supersteps without a combiner).
  uint64_t raw_bound = 2ull * g->num_edges() * engine.metrics().supersteps;
  EXPECT_LT(engine.metrics().vertex_messages, raw_bound / 2);
}

}  // namespace
}  // namespace grape
