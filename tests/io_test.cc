#include <algorithm>
#include <cstdio>
#include <tuple>
#include <fstream>
#include <string>

#include "graph/generators.h"
#include "graph/io.h"
#include "gtest/gtest.h"

namespace grape {
namespace {

class IoTest : public ::testing::Test {
 protected:
  std::string TempPath(const std::string& name) {
    return ::testing::TempDir() + "/grape_io_" + name;
  }
};

TEST_F(IoTest, EdgeListRoundTrip) {
  auto g = GenerateErdosRenyi(50, 200, /*directed=*/true, /*seed=*/3);
  ASSERT_TRUE(g.ok());
  std::string path = TempPath("edges.txt");
  ASSERT_TRUE(SaveEdgeListFile(*g, path).ok());

  EdgeListFormat format;
  format.directed = true;
  format.has_weight = true;
  format.has_label = true;
  auto loaded = LoadEdgeListFile(path, format);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_vertices(), g->num_vertices());
  EXPECT_EQ(loaded->num_edges(), g->num_edges());
  auto ea = g->ToEdgeList();
  auto eb = loaded->ToEdgeList();
  ASSERT_EQ(ea.size(), eb.size());
  for (size_t i = 0; i < ea.size(); ++i) EXPECT_EQ(ea[i], eb[i]);
  std::remove(path.c_str());
}

TEST_F(IoTest, EdgeListCommentsAndBlanks) {
  std::string path = TempPath("comments.txt");
  {
    std::ofstream out(path);
    out << "# comment line\n\n0 1\n  \n2 3\n";
  }
  EdgeListFormat format;
  auto g = LoadEdgeListFile(path, format);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_edges(), 2u);
  std::remove(path.c_str());
}

TEST_F(IoTest, EdgeListMalformedLine) {
  std::string path = TempPath("bad.txt");
  {
    std::ofstream out(path);
    out << "0 1\nnot an edge\n";
  }
  EdgeListFormat format;
  auto g = LoadEdgeListFile(path, format);
  EXPECT_FALSE(g.ok());
  EXPECT_TRUE(g.status().IsCorruption());
  std::remove(path.c_str());
}

TEST_F(IoTest, EdgeListMissingWeightColumn) {
  std::string path = TempPath("noweight.txt");
  {
    std::ofstream out(path);
    out << "0 1\n";
  }
  EdgeListFormat format;
  format.has_weight = true;
  EXPECT_FALSE(LoadEdgeListFile(path, format).ok());
  std::remove(path.c_str());
}

TEST_F(IoTest, MissingFileIsIOError) {
  EdgeListFormat format;
  auto g = LoadEdgeListFile("/nonexistent/grape/file.txt", format);
  EXPECT_FALSE(g.ok());
  EXPECT_TRUE(g.status().IsIOError());
}

TEST_F(IoTest, BinaryRoundTripWithLabels) {
  LabeledGraphOptions opts;
  opts.scale = 7;
  opts.edge_factor = 4;
  auto g = GenerateLabeledGraph(opts);
  ASSERT_TRUE(g.ok());
  std::string path = TempPath("graph.bin");
  ASSERT_TRUE(SaveBinary(*g, path).ok());
  auto loaded = LoadBinary(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_vertices(), g->num_vertices());
  EXPECT_EQ(loaded->num_edges(), g->num_edges());
  EXPECT_EQ(loaded->is_directed(), g->is_directed());
  for (VertexId v = 0; v < g->num_vertices(); ++v) {
    EXPECT_EQ(loaded->vertex_label(v), g->vertex_label(v));
  }
  // Parallel edges (same endpoints, different weight) have no guaranteed
  // relative order in the CSR, so compare as sorted multisets.
  auto ea = g->ToEdgeList();
  auto eb = loaded->ToEdgeList();
  ASSERT_EQ(ea.size(), eb.size());
  auto full_order = [](const Edge& x, const Edge& y) {
    return std::tie(x.src, x.dst, x.weight, x.label) <
           std::tie(y.src, y.dst, y.weight, y.label);
  };
  std::sort(ea.begin(), ea.end(), full_order);
  std::sort(eb.begin(), eb.end(), full_order);
  for (size_t i = 0; i < ea.size(); ++i) EXPECT_EQ(ea[i], eb[i]);
  std::remove(path.c_str());
}

TEST_F(IoTest, BinaryRejectsBadMagic) {
  std::string path = TempPath("bad.bin");
  {
    std::ofstream out(path, std::ios::binary);
    out << "this is not a grape binary graph";
  }
  auto loaded = LoadBinary(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsCorruption());
  std::remove(path.c_str());
}

TEST_F(IoTest, BinaryRejectsTruncation) {
  auto g = GenerateErdosRenyi(20, 50, true, 9);
  ASSERT_TRUE(g.ok());
  std::string path = TempPath("trunc.bin");
  ASSERT_TRUE(SaveBinary(*g, path).ok());
  // Truncate the file.
  {
    std::ifstream in(path, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
  }
  auto loaded = LoadBinary(path);
  EXPECT_FALSE(loaded.ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace grape
