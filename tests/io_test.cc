#include <algorithm>
#include <cstdio>
#include <tuple>
#include <fstream>
#include <string>

#include "graph/generators.h"
#include "graph/io.h"
#include "gtest/gtest.h"

namespace grape {
namespace {

class IoTest : public ::testing::Test {
 protected:
  std::string TempPath(const std::string& name) {
    return ::testing::TempDir() + "/grape_io_" + name;
  }
};

TEST_F(IoTest, EdgeListRoundTrip) {
  auto g = GenerateErdosRenyi(50, 200, /*directed=*/true, /*seed=*/3);
  ASSERT_TRUE(g.ok());
  std::string path = TempPath("edges.txt");
  ASSERT_TRUE(SaveEdgeListFile(*g, path).ok());

  EdgeListFormat format;
  format.directed = true;
  format.has_weight = true;
  format.has_label = true;
  auto loaded = LoadEdgeListFile(path, format);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_vertices(), g->num_vertices());
  EXPECT_EQ(loaded->num_edges(), g->num_edges());
  auto ea = g->ToEdgeList();
  auto eb = loaded->ToEdgeList();
  ASSERT_EQ(ea.size(), eb.size());
  for (size_t i = 0; i < ea.size(); ++i) EXPECT_EQ(ea[i], eb[i]);
  std::remove(path.c_str());
}

TEST_F(IoTest, EdgeListCommentsAndBlanks) {
  std::string path = TempPath("comments.txt");
  {
    std::ofstream out(path);
    out << "# comment line\n\n0 1\n  \n2 3\n";
  }
  EdgeListFormat format;
  auto g = LoadEdgeListFile(path, format);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_edges(), 2u);
  std::remove(path.c_str());
}

TEST_F(IoTest, EdgeListMalformedLine) {
  std::string path = TempPath("bad.txt");
  {
    std::ofstream out(path);
    out << "0 1\nnot an edge\n";
  }
  EdgeListFormat format;
  auto g = LoadEdgeListFile(path, format);
  EXPECT_FALSE(g.ok());
  EXPECT_TRUE(g.status().IsCorruption());
  std::remove(path.c_str());
}

TEST_F(IoTest, EdgeListMissingWeightColumn) {
  std::string path = TempPath("noweight.txt");
  {
    std::ofstream out(path);
    out << "0 1\n";
  }
  EdgeListFormat format;
  format.has_weight = true;
  EXPECT_FALSE(LoadEdgeListFile(path, format).ok());
  std::remove(path.c_str());
}

TEST_F(IoTest, MissingFileIsIOError) {
  EdgeListFormat format;
  auto g = LoadEdgeListFile("/nonexistent/grape/file.txt", format);
  EXPECT_FALSE(g.ok());
  EXPECT_TRUE(g.status().IsIOError());
}

// ----------------------------------------------------------- shard reader

// Reads every shard of `path` under `ranges` and checks the union against
// a whole-file LoadEdgeListFile: byte-range splitting must never drop or
// duplicate an edge, and the exchange keys (line byte offsets) must
// restore exact whole-file parse order.
void ExpectShardsCoverFile(const std::string& path,
                           const std::vector<ShardRange>& ranges,
                           const EdgeListFormat& format) {
  std::vector<ShardEdge> merged;
  for (const ShardRange& r : ranges) {
    auto shard = ReadEdgeShard(path, r, format);
    ASSERT_TRUE(shard.ok()) << shard.status().ToString();
    merged.insert(merged.end(), shard->edges.begin(), shard->edges.end());
  }
  std::sort(merged.begin(), merged.end(),
            [](const ShardEdge& a, const ShardEdge& b) {
              return a.key < b.key;
            });
  for (size_t i = 1; i < merged.size(); ++i) {
    ASSERT_LT(merged[i - 1].key, merged[i].key)
        << "duplicate line offset across shards";
  }
  // Reference: the whole file parsed as a single shard — file order with
  // byte-offset keys, the exact stream the splits must reassemble into.
  // (Graph::ToEdgeList would reorder into CSR order, hiding drops that
  // happen to preserve the multiset.)
  std::ifstream in(path, std::ios::binary);
  in.seekg(0, std::ios::end);
  ShardRange all{0, static_cast<uint64_t>(in.tellg())};
  auto whole = ReadEdgeShard(path, all, format);
  ASSERT_TRUE(whole.ok()) << whole.status().ToString();
  const auto& expect = whole->edges;
  ASSERT_EQ(merged.size(), expect.size());
  for (size_t i = 0; i < expect.size(); ++i) {
    EXPECT_EQ(merged[i].key, expect[i].key) << "edge " << i << " diverged";
    EXPECT_EQ(merged[i].edge.src, expect[i].edge.src) << "edge " << i;
    EXPECT_EQ(merged[i].edge.dst, expect[i].edge.dst) << "edge " << i;
    EXPECT_EQ(merged[i].edge.weight, expect[i].edge.weight) << "edge " << i;
    EXPECT_EQ(merged[i].edge.label, expect[i].edge.label) << "edge " << i;
  }
  // Cross-check the single-shard path against the canonical loader: the
  // same lines must survive both (count + vertex horizon).
  auto graph = LoadEdgeListFile(path, format);
  ASSERT_TRUE(graph.ok()) << graph.status().ToString();
  EXPECT_EQ(expect.size(), graph->num_edges());
  EXPECT_EQ(whole->max_vertex_plus1, graph->num_vertices());
}

TEST_F(IoTest, ShardRangesTileTheFile) {
  std::string path = TempPath("shard_tile.txt");
  {
    std::ofstream out(path);
    out << "# header comment\n";
    for (int i = 0; i < 97; ++i) out << i << " " << (i * 7 + 1) % 100 << "\n";
  }
  EdgeListFormat format;
  for (uint32_t shards : {1u, 2u, 3u, 5u, 8u, 13u, 64u}) {
    auto ranges = ComputeShardRanges(path, shards);
    ASSERT_TRUE(ranges.ok());
    ASSERT_EQ(ranges->size(), shards);
    uint64_t pos = 0;
    for (const ShardRange& r : *ranges) {
      EXPECT_EQ(r.offset, pos) << "ranges must tile without gap or overlap";
      pos = r.offset + r.length;
    }
    std::ifstream in(path, std::ios::binary);
    in.seekg(0, std::ios::end);
    EXPECT_EQ(pos, static_cast<uint64_t>(in.tellg()));
    ExpectShardsCoverFile(path, *ranges, format);
  }
  std::remove(path.c_str());
}

TEST_F(IoTest, ShardSplitsNeverDropOrDuplicateFuzz) {
  // Fuzz: random line lengths (1- to 7-digit ids), interleaved comments
  // and blank lines, with and without a trailing newline, over many shard
  // counts — including cut points landing on every byte class.
  EdgeListFormat format;
  uint64_t state = 0x9e3779b97f4a7c15ULL;
  auto next = [&state]() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  for (int round = 0; round < 12; ++round) {
    std::string path = TempPath("shard_fuzz_" + std::to_string(round));
    {
      std::ofstream out(path);
      const int lines = 20 + static_cast<int>(next() % 300);
      for (int i = 0; i < lines; ++i) {
        switch (next() % 8) {
          case 0:
            out << "# noise " << next() % 1000 << "\n";
            break;
          case 1:
            out << "\n";
            break;
          default:
            out << next() % 2000000 << " " << next() % 2000000 << "\n";
            break;
        }
      }
      if (round % 2 == 0) out << next() % 100 << " " << next() % 100;
      // (odd rounds end with a newline, even rounds without one)
    }
    for (uint32_t shards = 1; shards <= 9; ++shards) {
      auto ranges = ComputeShardRanges(path, shards);
      ASSERT_TRUE(ranges.ok());
      ExpectShardsCoverFile(path, *ranges, format);
    }
    std::remove(path.c_str());
  }
}

TEST_F(IoTest, ShardEmptyRangesAndTinyFiles) {
  std::string path = TempPath("shard_tiny.txt");
  {
    std::ofstream out(path);
    out << "0 1\n";
  }
  EdgeListFormat format;
  // Far more shards than lines: later shards must come back empty, and
  // the single edge must appear exactly once.
  auto ranges = ComputeShardRanges(path, 16);
  ASSERT_TRUE(ranges.ok());
  ASSERT_EQ(ranges->size(), 16u);
  ExpectShardsCoverFile(path, *ranges, format);
  size_t nonempty = 0;
  for (const ShardRange& r : *ranges) {
    auto shard = ReadEdgeShard(path, r, format);
    ASSERT_TRUE(shard.ok());
    if (!shard->edges.empty()) {
      nonempty++;
      EXPECT_EQ(shard->max_vertex_plus1, 2u);
    } else {
      EXPECT_EQ(shard->max_vertex_plus1, 0u);
    }
  }
  EXPECT_EQ(nonempty, 1u);
  std::remove(path.c_str());
}

TEST_F(IoTest, ShardOfEmptyAndCommentOnlyFiles) {
  EdgeListFormat format;
  {
    std::string path = TempPath("shard_empty.txt");
    std::ofstream(path).flush();
    auto ranges = ComputeShardRanges(path, 4);
    ASSERT_TRUE(ranges.ok());
    for (const ShardRange& r : *ranges) {
      EXPECT_EQ(r.length, 0u);
      auto shard = ReadEdgeShard(path, r, format);
      ASSERT_TRUE(shard.ok());
      EXPECT_TRUE(shard->edges.empty());
    }
    std::remove(path.c_str());
  }
  {
    std::string path = TempPath("shard_comments.txt");
    {
      std::ofstream out(path);
      out << "# a\n# b\n\n  \n# c\n";
    }
    auto ranges = ComputeShardRanges(path, 3);
    ASSERT_TRUE(ranges.ok());
    ExpectShardsCoverFile(path, *ranges, format);
    std::remove(path.c_str());
  }
}

TEST_F(IoTest, ShardMalformedLineSurfacesCorruption) {
  std::string path = TempPath("shard_bad.txt");
  {
    std::ofstream out(path);
    out << "0 1\nnot an edge\n2 3\n";
  }
  EdgeListFormat format;
  auto ranges = ComputeShardRanges(path, 2);
  ASSERT_TRUE(ranges.ok());
  bool saw_corruption = false;
  for (const ShardRange& r : *ranges) {
    auto shard = ReadEdgeShard(path, r, format);
    if (!shard.ok()) {
      EXPECT_TRUE(shard.status().IsCorruption());
      saw_corruption = true;
    }
  }
  EXPECT_TRUE(saw_corruption);
  std::remove(path.c_str());
}

TEST_F(IoTest, ShardRangesRejectBadArguments) {
  EXPECT_FALSE(ComputeShardRanges("/nonexistent/grape/file.txt", 2).ok());
  std::string path = TempPath("shard_zero.txt");
  std::ofstream(path) << "0 1\n";
  EXPECT_FALSE(ComputeShardRanges(path, 0).ok());
  std::remove(path.c_str());
}

TEST_F(IoTest, BinaryRoundTripWithLabels) {
  LabeledGraphOptions opts;
  opts.scale = 7;
  opts.edge_factor = 4;
  auto g = GenerateLabeledGraph(opts);
  ASSERT_TRUE(g.ok());
  std::string path = TempPath("graph.bin");
  ASSERT_TRUE(SaveBinary(*g, path).ok());
  auto loaded = LoadBinary(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_vertices(), g->num_vertices());
  EXPECT_EQ(loaded->num_edges(), g->num_edges());
  EXPECT_EQ(loaded->is_directed(), g->is_directed());
  for (VertexId v = 0; v < g->num_vertices(); ++v) {
    EXPECT_EQ(loaded->vertex_label(v), g->vertex_label(v));
  }
  // Parallel edges (same endpoints, different weight) have no guaranteed
  // relative order in the CSR, so compare as sorted multisets.
  auto ea = g->ToEdgeList();
  auto eb = loaded->ToEdgeList();
  ASSERT_EQ(ea.size(), eb.size());
  auto full_order = [](const Edge& x, const Edge& y) {
    return std::tie(x.src, x.dst, x.weight, x.label) <
           std::tie(y.src, y.dst, y.weight, y.label);
  };
  std::sort(ea.begin(), ea.end(), full_order);
  std::sort(eb.begin(), eb.end(), full_order);
  for (size_t i = 0; i < ea.size(); ++i) EXPECT_EQ(ea[i], eb[i]);
  std::remove(path.c_str());
}

TEST_F(IoTest, BinaryRejectsBadMagic) {
  std::string path = TempPath("bad.bin");
  {
    std::ofstream out(path, std::ios::binary);
    out << "this is not a grape binary graph";
  }
  auto loaded = LoadBinary(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsCorruption());
  std::remove(path.c_str());
}

TEST_F(IoTest, BinaryRejectsTruncation) {
  auto g = GenerateErdosRenyi(20, 50, true, 9);
  ASSERT_TRUE(g.ok());
  std::string path = TempPath("trunc.bin");
  ASSERT_TRUE(SaveBinary(*g, path).ok());
  // Truncate the file.
  {
    std::ifstream in(path, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
  }
  auto loaded = LoadBinary(path);
  EXPECT_FALSE(loaded.ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace grape
