#include <algorithm>
#include <cmath>

#include "apps/cf.h"
#include "apps/keyword.h"
#include "apps/seq/seq_algorithms.h"
#include "core/engine.h"
#include "graph/generators.h"
#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace grape {
namespace {

class KeywordMatrixTest : public ::testing::TestWithParam<FragmentId> {};

TEST_P(KeywordMatrixTest, MatchesSequentialDistances) {
  LabeledGraphOptions opts;
  opts.scale = 8;
  opts.edge_factor = 6;
  opts.num_vertex_labels = 5;
  opts.seed = 501;
  auto g = GenerateLabeledGraph(opts);
  ASSERT_TRUE(g.ok());

  KeywordQuery query;
  query.keywords = {1, 3};
  query.radius = 6.0;

  FragmentedGraph fg = testing::MakeFragments(*g, "hash", GetParam());
  GrapeEngine<KeywordApp> engine(fg, KeywordApp{});
  auto out = engine.Run(query);
  ASSERT_TRUE(out.ok()) << out.status();

  // Ground truth: per-keyword multi-source Dijkstra over the whole graph.
  std::vector<std::vector<double>> truth;
  for (Label k : query.keywords) truth.push_back(SeqKeywordDistance(*g, k));

  std::vector<bool> in_output(g->num_vertices(), false);
  for (const KeywordMatch& m : out->matches) {
    ASSERT_LT(m.vertex, g->num_vertices());
    in_output[m.vertex] = true;
    ASSERT_EQ(m.dist.size(), query.keywords.size());
    double score = 0;
    for (size_t k = 0; k < query.keywords.size(); ++k) {
      EXPECT_DOUBLE_EQ(m.dist[k], truth[k][m.vertex]);
      score = std::max(score, m.dist[k]);
    }
    EXPECT_DOUBLE_EQ(m.score, score);
    EXPECT_LE(m.score, query.radius);
  }
  // Completeness: every vertex within radius of all keywords is reported.
  for (VertexId v = 0; v < g->num_vertices(); ++v) {
    bool qualifies = true;
    for (size_t k = 0; k < query.keywords.size(); ++k) {
      qualifies &= truth[k][v] <= query.radius;
    }
    EXPECT_EQ(in_output[v], qualifies) << "vertex " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Workers, KeywordMatrixTest,
                         ::testing::Values(FragmentId{1}, FragmentId{4},
                                           FragmentId{8}),
                         [](const auto& info) {
                           return "n" + std::to_string(info.param);
                         });

TEST(KeywordTest, SortedByScore) {
  LabeledGraphOptions opts;
  opts.scale = 7;
  opts.num_vertex_labels = 3;
  opts.seed = 503;
  auto g = GenerateLabeledGraph(opts);
  ASSERT_TRUE(g.ok());
  FragmentedGraph fg = testing::MakeFragments(*g, "ldg", 4);
  KeywordQuery query;
  query.keywords = {0, 1, 2};
  query.radius = 8.0;
  GrapeEngine<KeywordApp> engine(fg, KeywordApp{});
  auto out = engine.Run(query);
  ASSERT_TRUE(out.ok());
  for (size_t i = 1; i < out->matches.size(); ++i) {
    EXPECT_LE(out->matches[i - 1].score, out->matches[i].score);
  }
}

TEST(KeywordTest, EmptyWhenRadiusTiny) {
  LabeledGraphOptions opts;
  opts.scale = 7;
  opts.num_vertex_labels = 8;
  opts.seed = 509;
  auto g = GenerateLabeledGraph(opts);
  ASSERT_TRUE(g.ok());
  FragmentedGraph fg = testing::MakeFragments(*g, "hash", 4);
  KeywordQuery query;
  query.keywords = {0, 1, 2, 3};
  query.radius = 0.0;  // must carry all four labels at distance 0
  GrapeEngine<KeywordApp> engine(fg, KeywordApp{});
  auto out = engine.Run(query);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->matches.empty());
}

class CfMatrixTest : public ::testing::TestWithParam<FragmentId> {};

TEST_P(CfMatrixTest, TrainsToReasonableRmse) {
  BipartiteOptions gopts;
  gopts.num_users = 300;
  gopts.num_items = 40;
  gopts.ratings_per_user = 15;
  gopts.seed = 521;
  auto g = GenerateBipartiteRatings(gopts);
  ASSERT_TRUE(g.ok());

  CfQuery query;
  query.rank = 8;
  query.epochs = 15;
  query.learning_rate = 0.02;

  FragmentedGraph fg = testing::MakeFragments(*g, "hash", GetParam());
  GrapeEngine<CfApp> engine(fg, CfApp{});
  auto out = engine.Run(query);
  ASSERT_TRUE(out.ok()) << out.status();
  // Ratings live in [1,5]; a fitted factorization should beat the trivial
  // all-3 predictor (RMSE ~1.3) comfortably.
  EXPECT_LT(out->train_rmse, 1.0);
  EXPECT_GT(out->train_rmse, 0.0);
  // Factors must exist for every vertex and be finite.
  for (VertexId v = 0; v < g->num_vertices(); ++v) {
    ASSERT_EQ(out->factors[v].size(), query.rank);
    for (float f : out->factors[v]) EXPECT_TRUE(std::isfinite(f));
  }
}

INSTANTIATE_TEST_SUITE_P(Workers, CfMatrixTest,
                         ::testing::Values(FragmentId{1}, FragmentId{4}),
                         [](const auto& info) {
                           return "n" + std::to_string(info.param);
                         });

TEST(CfTest, MoreEpochsDoNotHurtTraining) {
  BipartiteOptions gopts;
  gopts.num_users = 200;
  gopts.num_items = 30;
  gopts.ratings_per_user = 10;
  gopts.seed = 523;
  auto g = GenerateBipartiteRatings(gopts);
  ASSERT_TRUE(g.ok());
  FragmentedGraph fg = testing::MakeFragments(*g, "hash", 4);

  auto run = [&](uint32_t epochs) {
    CfQuery query;
    query.rank = 6;
    query.epochs = epochs;
    GrapeEngine<CfApp> engine(fg, CfApp{});
    auto out = engine.Run(query);
    EXPECT_TRUE(out.ok());
    return out->train_rmse;
  };
  double rmse2 = run(2);
  double rmse20 = run(20);
  EXPECT_LT(rmse20, rmse2 * 1.05);
}

TEST(CfTest, DeterministicAcrossRuns) {
  BipartiteOptions gopts;
  gopts.num_users = 100;
  gopts.num_items = 20;
  gopts.ratings_per_user = 8;
  gopts.seed = 541;
  auto g = GenerateBipartiteRatings(gopts);
  ASSERT_TRUE(g.ok());
  FragmentedGraph fg = testing::MakeFragments(*g, "hash", 3);
  CfQuery query;
  query.rank = 4;
  query.epochs = 5;
  GrapeEngine<CfApp> a(fg, CfApp{});
  GrapeEngine<CfApp> b(fg, CfApp{});
  auto ra = a.Run(query);
  auto rb = b.Run(query);
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  EXPECT_DOUBLE_EQ(ra->train_rmse, rb->train_rmse);
  for (VertexId v = 0; v < g->num_vertices(); ++v) {
    EXPECT_EQ(ra->factors[v], rb->factors[v]);
  }
}

TEST(CfTest, EpochCountControlsSupersteps) {
  BipartiteOptions gopts;
  gopts.num_users = 100;
  gopts.num_items = 20;
  gopts.ratings_per_user = 8;
  gopts.seed = 547;
  auto g = GenerateBipartiteRatings(gopts);
  ASSERT_TRUE(g.ok());
  FragmentedGraph fg = testing::MakeFragments(*g, "hash", 4);
  CfQuery query;
  query.rank = 4;
  query.epochs = 7;
  GrapeEngine<CfApp> engine(fg, CfApp{});
  ASSERT_TRUE(engine.Run(query).ok());
  // PEval runs epoch 1; six more IncEval epochs; plus <=2 drain rounds.
  EXPECT_GE(engine.metrics().supersteps, 7u);
  EXPECT_LE(engine.metrics().supersteps, 9u);
}

}  // namespace
}  // namespace grape
