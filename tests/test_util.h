#ifndef GRAPE_TESTS_TEST_UTIL_H_
#define GRAPE_TESTS_TEST_UTIL_H_

#include <string>

#include "gtest/gtest.h"
#include "partition/fragment.h"
#include "partition/partitioner.h"

namespace grape {
namespace testing {

/// Partitions `graph` with the named strategy and builds fragments,
/// failing the test on any error.
inline FragmentedGraph MakeFragments(const Graph& graph,
                                     const std::string& strategy,
                                     FragmentId num_fragments) {
  auto partitioner = MakePartitioner(strategy);
  EXPECT_TRUE(partitioner.ok()) << partitioner.status();
  auto assignment = (*partitioner)->Partition(graph, num_fragments);
  EXPECT_TRUE(assignment.ok()) << assignment.status();
  auto fg = FragmentBuilder::Build(graph, *assignment, num_fragments);
  EXPECT_TRUE(fg.ok()) << fg.status();
  return std::move(fg).value();
}

#define ASSERT_OK(expr)                             \
  do {                                              \
    auto _s = (expr);                               \
    ASSERT_TRUE(_s.ok()) << _s.ToString();          \
  } while (false)

// Two-level concatenation so __LINE__ expands before pasting; pasting
// `_res_##__LINE__` directly yields the literal token `_res___LINE__`,
// which collides when the macro is used twice in one test body.
#define GRAPE_TEST_CONCAT_INNER_(a, b) a##b
#define GRAPE_TEST_CONCAT_(a, b) GRAPE_TEST_CONCAT_INNER_(a, b)

#define ASSERT_OK_AND_ASSIGN_IMPL_(tmp, lhs, expr)  \
  auto tmp = (expr);                                \
  ASSERT_TRUE(tmp.ok()) << tmp.status().ToString(); \
  lhs = std::move(tmp).value()

#define ASSERT_OK_AND_ASSIGN(lhs, expr)             \
  ASSERT_OK_AND_ASSIGN_IMPL_(                       \
      GRAPE_TEST_CONCAT_(_res_, __LINE__), lhs, expr)

}  // namespace testing
}  // namespace grape

#endif  // GRAPE_TESTS_TEST_UTIL_H_
