#ifndef GRAPE_TESTS_TEST_UTIL_H_
#define GRAPE_TESTS_TEST_UTIL_H_

#include <string>

#include "gtest/gtest.h"
#include "partition/fragment.h"
#include "partition/partitioner.h"

namespace grape {
namespace testing {

/// Partitions `graph` with the named strategy and builds fragments,
/// failing the test on any error.
inline FragmentedGraph MakeFragments(const Graph& graph,
                                     const std::string& strategy,
                                     FragmentId num_fragments) {
  auto partitioner = MakePartitioner(strategy);
  EXPECT_TRUE(partitioner.ok()) << partitioner.status();
  auto assignment = (*partitioner)->Partition(graph, num_fragments);
  EXPECT_TRUE(assignment.ok()) << assignment.status();
  auto fg = FragmentBuilder::Build(graph, *assignment, num_fragments);
  EXPECT_TRUE(fg.ok()) << fg.status();
  return std::move(fg).value();
}

#define ASSERT_OK(expr)                             \
  do {                                              \
    auto _s = (expr);                               \
    ASSERT_TRUE(_s.ok()) << _s.ToString();          \
  } while (false)

#define ASSERT_OK_AND_ASSIGN(lhs, expr)             \
  auto _res_##__LINE__ = (expr);                    \
  ASSERT_TRUE(_res_##__LINE__.ok())                 \
      << _res_##__LINE__.status().ToString();       \
  lhs = std::move(_res_##__LINE__).value()

}  // namespace testing
}  // namespace grape

#endif  // GRAPE_TESTS_TEST_UTIL_H_
