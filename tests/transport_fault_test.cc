// Fault injection against the engine's message path: a FlakyTransport
// decorator drops, duplicates, delays, or hard-fails traffic between the
// engine and its substrate. The engine's contract under faults: hard
// failures surface as Status through DispatchSends/CoordinatorRoute (PR 2's
// error propagation) to the Run() caller; soft faults (drop/dup/delay) may
// change results but must never hang the fixed point.

#include <memory>
#include <string>
#include <vector>

#include "apps/sssp.h"
#include "gtest/gtest.h"
#include "rt/comm_world.h"
#include "rt/flaky_transport.h"
#include "tests/message_path_scenarios.h"
#include "tests/test_util.h"

namespace grape {
namespace {

struct SsspFixture {
  Graph graph;
  FragmentedGraph fg;

  static SsspFixture Make() {
    Graph g = testing::ScenarioGraph("grid");
    FragmentedGraph fg = testing::ScenarioFragments(g, "hash", 4);
    return SsspFixture{std::move(g), std::move(fg)};
  }

  Result<SsspOutput> Run(Transport* transport,
                         EngineMetrics* metrics = nullptr) {
    EngineOptions options;
    options.transport = transport;
    // A flaky substrate must terminate via the engine's fixpoint/termination
    // logic, not by us waiting forever; cap the rounds defensively.
    options.max_supersteps = 2000;
    GrapeEngine<SsspApp> engine(fg, SsspApp{}, options);
    auto out = engine.Run(SsspQuery{3});
    if (metrics != nullptr) *metrics = engine.metrics();
    return out;
  }
};

TEST(TransportFaultTest, InjectedSendFailureReachesRunCaller) {
  SsspFixture f = SsspFixture::Make();
  CommWorld inner(5);
  FlakyOptions fo;
  fo.fail_send_after = 3;  // fails inside the very first DispatchSends
  FlakyTransport flaky(&inner, fo);
  auto out = f.Run(&flaky);
  ASSERT_FALSE(out.ok()) << "engine swallowed an injected Send failure";
  EXPECT_TRUE(out.status().IsUnavailable()) << out.status();
}

TEST(TransportFaultTest, LateSendFailureHitsCoordinatorPathToo) {
  SsspFixture f = SsspFixture::Make();
  // First find how many sends a clean run issues, then fail somewhere in
  // the middle so the failing Send is a coordinator consolidated batch or
  // a later-superstep flush — the propagation paths differ.
  CommWorld clean(5);
  ASSERT_TRUE(f.Run(&clean).ok());
  const uint64_t total = clean.stats().messages;
  ASSERT_GT(total, 20u);

  CommWorld inner(5);
  FlakyOptions fo;
  fo.fail_send_after = total / 2;
  FlakyTransport flaky(&inner, fo);
  auto out = f.Run(&flaky);
  ASSERT_FALSE(out.ok());
  EXPECT_TRUE(out.status().IsUnavailable()) << out.status();
}

TEST(TransportFaultTest, DroppedMessagesNeverHangTheEngine) {
  SsspFixture f = SsspFixture::Make();
  for (uint64_t seed : {1ull, 7ull, 1234ull}) {
    CommWorld inner(5);
    FlakyOptions fo;
    fo.drop_rate = 0.2;
    fo.seed = seed;
    FlakyTransport flaky(&inner, fo);
    EngineMetrics metrics;
    auto out = f.Run(&flaky, &metrics);
    // Dropping update parameters can only under-inform workers: results
    // may be wrong, but the fixed point still terminates and Run returns.
    ASSERT_TRUE(out.ok()) << out.status();
    EXPECT_GT(flaky.dropped(), 0u) << "fault plan injected nothing";
    EXPECT_LT(metrics.supersteps, 2000u) << "hit the defensive cap";
  }
}

TEST(TransportFaultTest, DuplicatesAreAbsorbedByIdempotentAggregation) {
  SsspFixture f = SsspFixture::Make();
  CommWorld clean_world(5);
  auto clean = f.Run(&clean_world);
  ASSERT_TRUE(clean.ok());

  CommWorld inner(5);
  FlakyOptions fo;
  fo.dup_rate = 0.3;
  fo.seed = 99;
  FlakyTransport flaky(&inner, fo);
  auto out = f.Run(&flaky);
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_GT(flaky.duplicated(), 0u) << "fault plan injected nothing";
  // min is idempotent: delivering an update twice must not change the
  // converged distances.
  EXPECT_EQ(out->dist, clean->dist);
}

TEST(TransportFaultTest, DelayedDeliveryNeverHangsAndOnlyOverEstimates) {
  SsspFixture f = SsspFixture::Make();
  CommWorld clean_world(5);
  auto clean = f.Run(&clean_world);
  ASSERT_TRUE(clean.ok());

  for (uint64_t seed : {7ull, 21ull, 77ull}) {
    CommWorld inner(5);
    FlakyOptions fo;
    fo.delay_rate = 0.25;
    fo.seed = seed;
    FlakyTransport flaky(&inner, fo);
    EngineMetrics metrics;
    auto out = f.Run(&flaky, &metrics);
    // Delay deliberately violates the Flush barrier contract, so a batch
    // released after the fixpoint check can be stranded — the engine's BSP
    // termination is only sound over a conforming substrate. The hard
    // guarantees under a non-conforming one: Run returns (no hang), and a
    // monotonic app only ever *over*-estimates, because every update that
    // does arrive carries a real path length.
    ASSERT_TRUE(out.ok()) << out.status();
    EXPECT_GT(flaky.delayed(), 0u) << "fault plan injected nothing";
    EXPECT_LT(metrics.supersteps, 2000u) << "hit the defensive cap";
    ASSERT_EQ(out->dist.size(), clean->dist.size());
    for (size_t v = 0; v < out->dist.size(); ++v) {
      EXPECT_GE(out->dist[v], clean->dist[v])
          << "vertex " << v << " under-estimated under delay (seed " << seed
          << ")";
    }
  }
}

TEST(TransportFaultTest, FlakyOverSocketBackendPropagatesToo) {
  SsspFixture f = SsspFixture::Make();
  auto inner = MakeTransport("socket", 5);
  ASSERT_TRUE(inner.ok()) << inner.status();
  FlakyOptions fo;
  fo.fail_send_after = 10;
  FlakyTransport flaky(inner->get(), fo);
  auto out = f.Run(&flaky);
  ASSERT_FALSE(out.ok());
  EXPECT_TRUE(out.status().IsUnavailable()) << out.status();
}

}  // namespace
}  // namespace grape
