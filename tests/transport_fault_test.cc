// Fault injection against the engine's message path: a FlakyTransport
// decorator drops, duplicates, delays, or hard-fails traffic between the
// engine and its substrate (wrapping any backend — inproc, socket, tcp),
// and real endpoint processes of the multi-process backends get SIGKILLed
// under a live world. The engine's contract under faults: hard failures
// surface as Status through DispatchSends/CoordinatorRoute/the Flush
// barrier (PR 2's error propagation) to the Run() caller within a bounded
// time; soft faults (drop/dup/delay) may change results but must never
// hang the fixed point.

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "apps/sssp.h"
#include "graph/io.h"
#include "gtest/gtest.h"
#include "rt/comm_world.h"
#include "rt/distributed_load.h"
#include "rt/flaky_transport.h"
#include "rt/remote_worker.h"
#include "rt/socket_transport.h"
#include "rt/tcp_transport.h"
#include "tests/message_path_scenarios.h"
#include "tests/test_util.h"

namespace grape {
namespace {

struct SsspFixture {
  Graph graph;
  FragmentedGraph fg;

  static SsspFixture Make() {
    Graph g = testing::ScenarioGraph("grid");
    FragmentedGraph fg = testing::ScenarioFragments(g, "hash", 4);
    return SsspFixture{std::move(g), std::move(fg)};
  }

  Result<SsspOutput> Run(Transport* transport,
                         EngineMetrics* metrics = nullptr) {
    EngineOptions options;
    options.transport = transport;
    // A flaky substrate must terminate via the engine's fixpoint/termination
    // logic, not by us waiting forever; cap the rounds defensively.
    options.max_supersteps = 2000;
    GrapeEngine<SsspApp> engine(fg, SsspApp{}, options);
    auto out = engine.Run(SsspQuery{3});
    if (metrics != nullptr) *metrics = engine.metrics();
    return out;
  }
};

TEST(TransportFaultTest, InjectedSendFailureReachesRunCaller) {
  SsspFixture f = SsspFixture::Make();
  CommWorld inner(5);
  FlakyOptions fo;
  fo.fail_send_after = 3;  // fails inside the very first DispatchSends
  FlakyTransport flaky(&inner, fo);
  auto out = f.Run(&flaky);
  ASSERT_FALSE(out.ok()) << "engine swallowed an injected Send failure";
  EXPECT_TRUE(out.status().IsUnavailable()) << out.status();
}

TEST(TransportFaultTest, LateSendFailureHitsCoordinatorPathToo) {
  SsspFixture f = SsspFixture::Make();
  // First find how many sends a clean run issues, then fail somewhere in
  // the middle so the failing Send is a coordinator consolidated batch or
  // a later-superstep flush — the propagation paths differ.
  CommWorld clean(5);
  ASSERT_TRUE(f.Run(&clean).ok());
  const uint64_t total = clean.stats().messages;
  ASSERT_GT(total, 20u);

  CommWorld inner(5);
  FlakyOptions fo;
  fo.fail_send_after = total / 2;
  FlakyTransport flaky(&inner, fo);
  auto out = f.Run(&flaky);
  ASSERT_FALSE(out.ok());
  EXPECT_TRUE(out.status().IsUnavailable()) << out.status();
}

TEST(TransportFaultTest, DroppedMessagesNeverHangTheEngine) {
  SsspFixture f = SsspFixture::Make();
  for (uint64_t seed : {1ull, 7ull, 1234ull}) {
    CommWorld inner(5);
    FlakyOptions fo;
    fo.drop_rate = 0.2;
    fo.seed = seed;
    FlakyTransport flaky(&inner, fo);
    EngineMetrics metrics;
    auto out = f.Run(&flaky, &metrics);
    // Dropping update parameters can only under-inform workers: results
    // may be wrong, but the fixed point still terminates and Run returns.
    ASSERT_TRUE(out.ok()) << out.status();
    EXPECT_GT(flaky.dropped(), 0u) << "fault plan injected nothing";
    EXPECT_LT(metrics.supersteps, 2000u) << "hit the defensive cap";
  }
}

TEST(TransportFaultTest, DuplicatesAreAbsorbedByIdempotentAggregation) {
  SsspFixture f = SsspFixture::Make();
  CommWorld clean_world(5);
  auto clean = f.Run(&clean_world);
  ASSERT_TRUE(clean.ok());

  CommWorld inner(5);
  FlakyOptions fo;
  fo.dup_rate = 0.3;
  fo.seed = 99;
  FlakyTransport flaky(&inner, fo);
  auto out = f.Run(&flaky);
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_GT(flaky.duplicated(), 0u) << "fault plan injected nothing";
  // min is idempotent: delivering an update twice must not change the
  // converged distances.
  EXPECT_EQ(out->dist, clean->dist);
}

TEST(TransportFaultTest, DelayedDeliveryNeverHangsAndOnlyOverEstimates) {
  SsspFixture f = SsspFixture::Make();
  CommWorld clean_world(5);
  auto clean = f.Run(&clean_world);
  ASSERT_TRUE(clean.ok());

  for (uint64_t seed : {7ull, 21ull, 77ull}) {
    CommWorld inner(5);
    FlakyOptions fo;
    fo.delay_rate = 0.25;
    fo.seed = seed;
    FlakyTransport flaky(&inner, fo);
    EngineMetrics metrics;
    auto out = f.Run(&flaky, &metrics);
    // Delay deliberately violates the Flush barrier contract, so a batch
    // released after the fixpoint check can be stranded — the engine's BSP
    // termination is only sound over a conforming substrate. The hard
    // guarantees under a non-conforming one: Run returns (no hang), and a
    // monotonic app only ever *over*-estimates, because every update that
    // does arrive carries a real path length.
    ASSERT_TRUE(out.ok()) << out.status();
    EXPECT_GT(flaky.delayed(), 0u) << "fault plan injected nothing";
    EXPECT_LT(metrics.supersteps, 2000u) << "hit the defensive cap";
    ASSERT_EQ(out->dist.size(), clean->dist.size());
    for (size_t v = 0; v < out->dist.size(); ++v) {
      EXPECT_GE(out->dist[v], clean->dist[v])
          << "vertex " << v << " under-estimated under delay (seed " << seed
          << ")";
    }
  }
}

TEST(TransportFaultTest, FlakyOverSocketBackendPropagatesToo) {
  SsspFixture f = SsspFixture::Make();
  auto inner = MakeTransport("socket", 5);
  ASSERT_TRUE(inner.ok()) << inner.status();
  FlakyOptions fo;
  fo.fail_send_after = 10;
  FlakyTransport flaky(inner->get(), fo);
  auto out = f.Run(&flaky);
  ASSERT_FALSE(out.ok());
  EXPECT_TRUE(out.status().IsUnavailable()) << out.status();
}

TEST(TransportFaultTest, FlakyOverTcpBackendPropagatesToo) {
  SsspFixture f = SsspFixture::Make();
  auto inner = MakeTransport("tcp", 5);
  ASSERT_TRUE(inner.ok()) << inner.status();
  FlakyOptions fo;
  fo.fail_send_after = 10;
  FlakyTransport flaky(inner->get(), fo);
  auto out = f.Run(&flaky);
  ASSERT_FALSE(out.ok());
  EXPECT_TRUE(out.status().IsUnavailable()) << out.status();
}

TEST(TransportFaultTest, FlushFailureSurfacesThroughDispatchSends) {
  // The barrier path gets its own hard fault: DispatchSends ends every
  // superstep's flush with a Flush() call, and a failure there must reach
  // the Run() caller like a Send failure does. This is the in-process
  // stand-in for an endpoint dying between supersteps, so it covers the
  // propagation route on every backend without process games.
  SsspFixture f = SsspFixture::Make();
  CommWorld inner(5);
  FlakyOptions fo;
  fo.fail_flush_after = 2;
  FlakyTransport flaky(&inner, fo);
  auto out = f.Run(&flaky);
  ASSERT_FALSE(out.ok()) << "engine swallowed an injected Flush failure";
  EXPECT_TRUE(out.status().IsUnavailable()) << out.status();
}

/// Kills one real endpoint process of `backend`, runs the engine over the
/// half-dead substrate, and requires a Status (through DispatchSends /
/// CoordinatorRoute / the Flush barrier) within a bounded time — never a
/// hang, never a crash. Process-backed backends only; inproc's equivalent
/// is the injected hard fault above.
void RunKilledEndpointScenario(const std::string& backend) {
  SsspFixture f = SsspFixture::Make();
  auto made = MakeTransport(backend, 5);
  ASSERT_TRUE(made.ok()) << made.status();
  Transport* transport = made->get();

  std::vector<pid_t> pids;
  if (auto* st = dynamic_cast<SocketTransport*>(transport)) {
    pids = st->endpoint_pids();
  } else if (auto* tt = dynamic_cast<TcpTransport*>(transport)) {
    pids = tt->endpoint_pids();
  }
  ASSERT_EQ(pids.size(), 5u) << backend << " did not fork real endpoints";

  // A healthy barrier first, so the kill verifiably lands mid-world, then
  // SIGKILL a worker endpoint — no shutdown handshake, exactly like an
  // OOM-killed or power-cycled machine.
  ASSERT_TRUE(transport->Send(1, 2, kTagControl, {1}).ok());
  ASSERT_TRUE(transport->Flush().ok());
  ASSERT_EQ(kill(pids[3], SIGKILL), 0);
  ASSERT_EQ(waitpid(pids[3], nullptr, 0), pids[3]);
  // Wait until the transport itself has seen the death (its receiver hits
  // EOF and fails the barrier); otherwise a small engine run could race
  // the kernel and finish before the corpse is noticed.
  const auto seen_by =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  while (transport->Flush().ok()) {
    ASSERT_LT(std::chrono::steady_clock::now(), seen_by)
        << backend << " never noticed its killed endpoint";
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  auto out = std::async(std::launch::async, [&f, transport] {
    return f.Run(transport);
  });
  if (out.wait_for(std::chrono::seconds(60)) != std::future_status::ready) {
    // A wedged engine thread cannot be joined (the future's destructor
    // would block forever): fail fast and loudly instead of sitting out
    // the ctest timeout.
    ADD_FAILURE() << backend << ": engine hung on a killed endpoint "
                  << "instead of surfacing a Status";
    std::fflush(nullptr);
    std::abort();
  }
  auto result = out.get();
  ASSERT_FALSE(result.ok())
      << backend << ": engine computed a result over a dead endpoint";
  const Status& st = result.status();
  EXPECT_TRUE(st.IsUnavailable() || st.IsCancelled() || st.IsIOError()) << st;
}

TEST(TransportFaultTest, KilledSocketEndpointSurfacesStatusWithinDeadline) {
  RunKilledEndpointScenario("socket");
}

TEST(TransportFaultTest, KilledTcpEndpointSurfacesStatusWithinDeadline) {
  RunKilledEndpointScenario("tcp");
}

// ---------------------------------------------------------------------------
// Remote-compute faults: PEval/IncEval execute inside the endpoint
// processes (EngineOptions::remote_app), so an endpoint death is now a
// *worker* death mid-computation, and soft faults hit the worker-protocol
// control frames too. Contract: the engine's remote superstep loop
// surfaces a Status within bounded time — never a hang, never a partial
// Assemble passed off as a result.
// ---------------------------------------------------------------------------

/// SSSP whose IncEval dawdles: keeps every worker verifiably
/// mid-IncEval for seconds, so a SIGKILL lands inside remote compute.
struct SlowIncEvalSssp : SsspApp {
  void IncEval(const SsspQuery& query, const Fragment& frag,
               ParamStore<double>& params,
               const std::vector<LocalId>& updated) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    SsspApp::IncEval(query, frag, params, updated);
  }
};

/// SSSP whose GetPartial dawdles: holds the world in the Assemble
/// phase long enough to kill a worker mid-partial-extraction.
struct SlowPartialSssp : SsspApp {
  PartialType GetPartial(const SsspQuery& query, const Fragment& frag,
                         const ParamStore<double>& params) const {
    std::this_thread::sleep_for(std::chrono::seconds(5));
    return SsspApp::GetPartial(query, frag, params);
  }
};

/// Kills a worker endpoint while remote compute is verifiably inside the
/// named phase, and requires the engine's Run to come back with a Status
/// within a bounded time. The slow app's per-phase sleeps dwarf the kill
/// delay, so the kill cannot race past the phase under test.
template <typename SlowApp>
void KillRemoteWorkerMidPhase(const std::string& backend,
                              const std::string& app_name, int kill_after_ms,
                              const char* phase) {
  // Endpoint children snapshot the registry at fork: register first.
  RegisterRemoteWorker<SlowApp>(app_name);
  SsspFixture f = SsspFixture::Make();
  auto made = MakeTransport(backend, 5);
  ASSERT_TRUE(made.ok()) << made.status();
  Transport* transport = made->get();
  std::vector<pid_t> pids;
  if (auto* st = dynamic_cast<SocketTransport*>(transport)) {
    pids = st->endpoint_pids();
  } else if (auto* tt = dynamic_cast<TcpTransport*>(transport)) {
    pids = tt->endpoint_pids();
  }
  ASSERT_EQ(pids.size(), 5u) << backend << " did not fork real endpoints";

  EngineOptions options;
  options.transport = transport;
  options.max_supersteps = 2000;
  options.remote_app = app_name;
  options.remote_timeout_ms = 30000;
  GrapeEngine<SlowApp> engine(f.fg, SlowApp{}, options);
  auto out = std::async(std::launch::async,
                        [&engine] { return engine.Run(SsspQuery{3}); });

  std::this_thread::sleep_for(std::chrono::milliseconds(kill_after_ms));
  ASSERT_EQ(kill(pids[3], SIGKILL), 0);
  ASSERT_EQ(waitpid(pids[3], nullptr, 0), pids[3]);

  if (out.wait_for(std::chrono::seconds(60)) != std::future_status::ready) {
    ADD_FAILURE() << backend << ": engine hung on a worker killed mid-"
                  << phase;
    std::fflush(nullptr);
    std::abort();
  }
  auto result = out.get();
  ASSERT_FALSE(result.ok())
      << backend << ": engine produced a result although a remote worker "
      << "was killed mid-" << phase;
  const Status& st = result.status();
  EXPECT_TRUE(st.IsUnavailable() || st.IsCancelled() || st.IsIOError()) << st;
}

TEST(TransportFaultTest, KilledRemoteWorkerMidIncEvalSocket) {
  // ~31 supersteps x 100ms sleeping IncEval >> the 600ms kill delay (the
  // first rounds alone take seconds), so the kill lands mid-IncEval.
  KillRemoteWorkerMidPhase<SlowIncEvalSssp>("socket", "slow_inc_sssp", 600,
                                            "IncEval");
}

TEST(TransportFaultTest, KilledRemoteWorkerMidIncEvalTcp) {
  KillRemoteWorkerMidPhase<SlowIncEvalSssp>("tcp", "slow_inc_sssp", 600,
                                            "IncEval");
}

TEST(TransportFaultTest, KilledRemoteWorkerMidAssembleSocket) {
  // The fixpoint itself converges in well under a second; GetPartial then
  // sleeps 5s in every worker, so a 1.5s kill lands mid-Assemble and no
  // partial Assemble may be accepted.
  KillRemoteWorkerMidPhase<SlowPartialSssp>("socket", "slow_partial_sssp",
                                            1500, "Assemble");
}

TEST(TransportFaultTest, KilledRemoteWorkerMidAssembleTcp) {
  KillRemoteWorkerMidPhase<SlowPartialSssp>("tcp", "slow_partial_sssp", 1500,
                                            "Assemble");
}

/// Soft faults over the worker protocol: drop/dup/delay now hit control
/// frames (load, run commands, acks, apply batches), not just parameter
/// payloads. The engine must stay Status-clean: every run returns within
/// its remote deadline, either OK or with a Status — never a hang, and
/// never an abort.
TEST(TransportFaultTest, FlakyWorkerProtocolStaysStatusClean) {
  SsspFixture f = SsspFixture::Make();
  struct Case {
    const char* what;
    FlakyOptions fo;
  };
  std::vector<Case> cases;
  for (uint64_t seed : {1ull, 7ull, 99ull}) {
    FlakyOptions drop;
    drop.drop_rate = 0.05;
    drop.seed = seed;
    cases.push_back({"drop", drop});
    FlakyOptions dup;
    dup.dup_rate = 0.2;
    dup.seed = seed;
    cases.push_back({"dup", dup});
    FlakyOptions delay;
    delay.delay_rate = 0.15;
    delay.seed = seed;
    cases.push_back({"delay", delay});
  }
  for (const Case& c : cases) {
    CommWorld inner(5);
    FlakyTransport flaky(&inner, c.fo);
    EngineOptions options;
    options.transport = &flaky;
    options.max_supersteps = 2000;
    options.remote_app = "sssp";
    // Small deadline: a dropped control frame must time out promptly.
    options.remote_timeout_ms = 3000;
    GrapeEngine<SsspApp> engine(f.fg, SsspApp{}, options);
    auto fut = std::async(std::launch::async,
                          [&engine] { return engine.Run(SsspQuery{3}); });
    if (fut.wait_for(std::chrono::seconds(60)) !=
        std::future_status::ready) {
      ADD_FAILURE() << "remote run hung under flaky " << c.what << " (seed "
                    << c.fo.seed << ")";
      std::fflush(nullptr);
      std::abort();
    }
    auto result = fut.get();
    if (!result.ok()) {
      const Status& st = result.status();
      EXPECT_TRUE(st.IsUnavailable() || st.IsCancelled() || st.IsInternal() ||
                  st.IsFailedPrecondition() || st.IsIOError())
          << "flaky " << c.what << " (seed " << c.fo.seed
          << ") surfaced an unexpected status: " << st;
    }
  }
}

/// A hard Send failure in remote mode propagates exactly like local mode:
/// through the engine's control-plane sends instead of DispatchSends.
TEST(TransportFaultTest, RemoteComputeSendFailureReachesRunCaller) {
  SsspFixture f = SsspFixture::Make();
  CommWorld inner(5);
  FlakyOptions fo;
  fo.fail_send_after = 6;  // fails during load / first commands
  FlakyTransport flaky(&inner, fo);
  EngineOptions options;
  options.transport = &flaky;
  options.max_supersteps = 2000;
  options.remote_app = "sssp";
  options.remote_timeout_ms = 3000;
  GrapeEngine<SsspApp> engine(f.fg, SsspApp{}, options);
  auto out = engine.Run(SsspQuery{3});
  ASSERT_FALSE(out.ok()) << "engine swallowed an injected Send failure";
  EXPECT_TRUE(out.status().IsUnavailable()) << out.status();
}

/// A worker endpoint SIGKILLed during a distributed graph build
/// (rt/distributed_load.h): the coordinator's await loops must surface a
/// Status within bounded time — never hang on the missing shard or build
/// ack. The endpoint dies before its shard command arrives, so the kill
/// verifiably lands mid-protocol.
void KillEndpointMidDistributedLoad(const std::string& backend) {
  Graph g = testing::ScenarioGraph("grid");
  std::string path = ::testing::TempDir() + "/grape_fault_dist_" + backend +
                     "_" + std::to_string(getpid()) + ".txt";
  ASSERT_TRUE(SaveEdgeListFile(g, path).ok());

  auto made = MakeTransport(backend, 5);
  ASSERT_TRUE(made.ok()) << made.status();
  Transport* transport = made->get();
  std::vector<pid_t> pids;
  if (auto* st = dynamic_cast<SocketTransport*>(transport)) {
    pids = st->endpoint_pids();
  } else if (auto* tt = dynamic_cast<TcpTransport*>(transport)) {
    pids = tt->endpoint_pids();
  }
  ASSERT_EQ(pids.size(), 5u) << backend << " did not fork real endpoints";
  ASSERT_EQ(kill(pids[2], SIGKILL), 0);
  ASSERT_EQ(waitpid(pids[2], nullptr, 0), pids[2]);

  DistributedLoadOptions opt;
  opt.path = path;
  opt.format.directed = true;
  opt.format.has_weight = true;
  opt.format.has_label = true;
  opt.timeout_ms = 30000;
  auto fut = std::async(std::launch::async, [transport, &opt] {
    return DistributedLoad(transport, opt);
  });
  if (fut.wait_for(std::chrono::seconds(60)) != std::future_status::ready) {
    ADD_FAILURE() << backend
                  << ": distributed load hung on a killed endpoint";
    std::fflush(nullptr);
    std::abort();
  }
  auto meta = fut.get();
  ASSERT_FALSE(meta.ok())
      << backend << ": distributed load reported success although a "
      << "worker endpoint was dead";
  const Status& st = meta.status();
  EXPECT_TRUE(st.IsUnavailable() || st.IsCancelled() || st.IsIOError()) << st;
  std::remove(path.c_str());
}

TEST(TransportFaultTest, KilledSocketEndpointMidDistributedLoad) {
  KillEndpointMidDistributedLoad("socket");
}

TEST(TransportFaultTest, KilledTcpEndpointMidDistributedLoad) {
  KillEndpointMidDistributedLoad("tcp");
}

TEST(TransportFaultTest, KilledTcpEndpointFailsDirectTransportOpsToo) {
  // Below the engine: the raw transport contract under a killed endpoint.
  // Flush must return (not hang) with a Status once the death is seen,
  // and Sends routed at the dead rank must start failing within a bounded
  // time instead of silently buffering forever.
  auto made = MakeTransport("tcp", 3);
  ASSERT_TRUE(made.ok()) << made.status();
  auto* tt = dynamic_cast<TcpTransport*>(made->get());
  ASSERT_NE(tt, nullptr);
  ASSERT_TRUE(tt->Send(0, 1, kTagControl, {1}).ok());
  ASSERT_TRUE(tt->Flush().ok());
  ASSERT_EQ(kill(tt->endpoint_pids()[1], SIGKILL), 0);

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  for (;;) {
    Status send_st = tt->Send(0, 1, kTagParamUpdate,
                              std::vector<uint8_t>(4096));
    Status flush_st = send_st.ok() ? tt->Flush() : Status::OK();
    if (!send_st.ok() || !flush_st.ok()) {
      break;  // the death surfaced as a Status — the contract held
    }
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "killed endpoint never surfaced through Send/Flush";
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

// ---------------------------------------------------------------------------
// SIGKILL recovery (ISSUE 7 tentpole): with a CheckpointPolicy enabled, a
// worker endpoint killed mid-run is detected (pid probe + liveness
// monitor), the whole world is respawned, workers restore from the last
// checkpoint, and the finished run is bit-identical to the fault-free
// golden — same output hash, same CommStats counters, same superstep
// count. The FlakyTransport crash matrix in checkpoint_test.cc covers
// arbitrary frame offsets inproc; this is the real-process twin on the
// forked backends.
// ---------------------------------------------------------------------------

struct RecoveryGolden {
  uint64_t messages = 0;
  uint64_t bytes = 0;
  uint32_t supersteps = 0;
  uint64_t hash = 0;
};

/// Fault-free golden observables for `AppT` as remote compute. Computed
/// over the inproc backend: the message-path golden matrix already
/// freezes that counters and outputs are backend-invariant.
template <typename AppT, typename QueryT, typename HashFn>
RecoveryGolden RemoteGolden(const char* app_name, const FragmentedGraph& fg,
                            QueryT query, HashFn hash_out) {
  RegisterBuiltinWorkerApps();
  CommWorld world(static_cast<uint32_t>(fg.fragments.size()) + 1);
  EngineOptions options;
  options.transport = &world;
  options.remote_app = app_name;
  options.max_supersteps = 2000;
  GrapeEngine<AppT> engine(fg, AppT{}, options);
  auto out = engine.Run(query);
  GRAPE_CHECK(out.ok()) << out.status();
  RecoveryGolden golden;
  golden.messages = engine.metrics().messages;
  golden.bytes = engine.metrics().bytes;
  golden.supersteps = engine.metrics().supersteps;
  golden.hash = hash_out(*out);
  return golden;
}

/// SIGKILLs the rank-2 endpoint at the end of superstep `kill_superstep`
/// (from the engine's on_superstep hook, so the kill lands at an exact,
/// reproducible point after that superstep's checkpoint) and requires the
/// recovered run to match `golden` bit for bit.
template <typename AppT, typename QueryT, typename HashFn>
void RunSigkillRecoveryScenario(const std::string& backend,
                                const char* app_name,
                                const FragmentedGraph& fg, QueryT query,
                                uint32_t kill_superstep, HashFn hash_out,
                                const RecoveryGolden& golden) {
  SCOPED_TRACE(backend + "/" + app_name + " killed at superstep " +
               std::to_string(kill_superstep));
  RegisterBuiltinWorkerApps();
  auto made = MakeTransport(backend, fg.fragments.size() + 1);
  ASSERT_TRUE(made.ok()) << made.status();
  Transport* transport = made->get();

  EngineOptions options;
  options.transport = transport;
  options.remote_app = app_name;
  options.max_supersteps = 2000;
  options.remote_timeout_ms = 60000;
  options.verbose = ::getenv("GRAPE_TEST_VERBOSE") != nullptr;
  options.checkpoint.every_k = 1;
  // Death detection below runs through the pid probe (waitpid) on the
  // liveness monitor's Check, not through ping timeouts; a generous lease
  // keeps ping frames out of the deterministic run.
  options.checkpoint.lease_ms = 60000;
  std::atomic<bool> killed{false};
  options.on_superstep = [&](uint32_t superstep) {
    if (superstep != kill_superstep || killed.exchange(true)) return;
    std::vector<int64_t> pids = transport->endpoint_process_ids();
    ASSERT_GT(pids.size(), 2u) << backend << " exposed no endpoint pids";
    ASSERT_GT(pids[2], 0);
    ASSERT_EQ(kill(static_cast<pid_t>(pids[2]), SIGKILL), 0);
  };

  GrapeEngine<AppT> engine(fg, AppT{}, options);
  auto fut = std::async(std::launch::async,
                        [&engine, &query] { return engine.Run(query); });
  if (fut.wait_for(std::chrono::seconds(120)) != std::future_status::ready) {
    ADD_FAILURE() << backend << "/" << app_name
                  << ": recovery hung instead of finishing or failing";
    std::fflush(nullptr);
    std::abort();
  }
  auto out = fut.get();
  ASSERT_TRUE(killed.load()) << "run finished before superstep "
                             << kill_superstep << " — kill never landed";
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_GE(engine.metrics().recoveries, 1u)
      << "engine produced a result without recovering a killed worker";
  EXPECT_EQ(hash_out(*out), golden.hash) << "recovered output diverged";
  EXPECT_EQ(engine.metrics().messages, golden.messages);
  EXPECT_EQ(engine.metrics().bytes, golden.bytes);
  EXPECT_EQ(engine.metrics().supersteps, golden.supersteps);
}

TEST(TransportFaultTest, SigkilledWorkerRecoversBitIdenticalSssp) {
  Graph g = testing::ScenarioGraph("grid");
  FragmentedGraph fg = testing::ScenarioFragments(g, "hash", 4);
  auto hash = [](const SsspOutput& o) { return testing::HashVector(o.dist); };
  RecoveryGolden golden = RemoteGolden<SsspApp>("sssp", fg, SsspQuery{3},
                                                hash);
  for (const char* backend : {"socket", "tcp"}) {
    for (uint32_t k : {1u, 3u, 7u}) {
      RunSigkillRecoveryScenario<SsspApp>(backend, "sssp", fg, SsspQuery{3},
                                          k, hash, golden);
    }
  }
}

TEST(TransportFaultTest, SigkilledWorkerRecoversBitIdenticalCcSocket) {
  Graph g = testing::ScenarioGraph("er");
  FragmentedGraph fg = testing::ScenarioFragments(g, "hash", 6);
  auto hash = [](const CcOutput& o) { return testing::HashVector(o.label); };
  RecoveryGolden golden = RemoteGolden<CcApp>("cc", fg, CcQuery{}, hash);
  RunSigkillRecoveryScenario<CcApp>("socket", "cc", fg, CcQuery{}, 2, hash,
                                    golden);
}

TEST(TransportFaultTest, SigkilledWorkerRecoversBitIdenticalPageRankTcp) {
  Graph g = testing::ScenarioGraph("rmat");
  FragmentedGraph fg = testing::ScenarioFragments(g, "hash", 4);
  PageRankQuery query;
  query.max_iterations = 30;
  auto hash = [](const PageRankOutput& o) {
    return testing::HashVector(o.rank);
  };
  RecoveryGolden golden = RemoteGolden<PageRankApp>("pagerank", fg, query,
                                                    hash);
  RunSigkillRecoveryScenario<PageRankApp>("tcp", "pagerank", fg, query, 2,
                                          hash, golden);
}

}  // namespace
}  // namespace grape
