#include <cstdint>

#include "gtest/gtest.h"
#include "util/flags.h"
#include "util/result.h"
#include "util/status.h"
#include "util/string_util.h"

namespace grape {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, AllConstructorsSetMatchingCode) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::Unimplemented("x").IsUnimplemented());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::IOError("a"));
}

Status Fails() { return Status::Internal("boom"); }
Status PropagatesThroughMacro() {
  GRAPE_RETURN_NOT_OK(Fails());
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  EXPECT_TRUE(PropagatesThroughMacro().IsInternal());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.ValueOr(0), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.ValueOr(7), 7);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("hello"));
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "hello");
}

TEST(StringUtilTest, SplitBasic) {
  auto pieces = Split("a,b,,c", ',');
  ASSERT_EQ(pieces.size(), 4u);
  EXPECT_EQ(pieces[0], "a");
  EXPECT_EQ(pieces[2], "");
}

TEST(StringUtilTest, SplitSkipEmpty) {
  auto pieces = Split(",a,,b,", ',', /*skip_empty=*/true);
  ASSERT_EQ(pieces.size(), 2u);
  EXPECT_EQ(pieces[0], "a");
  EXPECT_EQ(pieces[1], "b");
}

TEST(StringUtilTest, JoinRoundTrip) {
  EXPECT_EQ(Join({"x", "y", "z"}, "-"), "x-y-z");
  EXPECT_EQ(Join({}, "-"), "");
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(Trim("  abc \t\n"), "abc");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
}

TEST(StringUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("grape.db", "grape"));
  EXPECT_FALSE(StartsWith("gr", "grape"));
  EXPECT_TRUE(EndsWith("grape.db", ".db"));
  EXPECT_FALSE(EndsWith("db", ".db"));
}

TEST(StringUtilTest, HumanBytes) {
  EXPECT_EQ(HumanBytes(512), "512 B");
  EXPECT_EQ(HumanBytes(1536), "1.50 KB");
  EXPECT_EQ(HumanBytes(3u << 20), "3.00 MB");
}

TEST(StringUtilTest, ParseUint64) {
  uint64_t v = 0;
  EXPECT_TRUE(ParseUint64("12345", &v));
  EXPECT_EQ(v, 12345u);
  EXPECT_FALSE(ParseUint64("", &v));
  EXPECT_FALSE(ParseUint64("12x", &v));
  EXPECT_FALSE(ParseUint64("-3", &v));
}

TEST(StringUtilTest, ParseDouble) {
  double v = 0;
  EXPECT_TRUE(ParseDouble("3.5", &v));
  EXPECT_DOUBLE_EQ(v, 3.5);
  EXPECT_FALSE(ParseDouble("abc", &v));
}

TEST(FlagsTest, ParsesAllForms) {
  const char* argv[] = {"prog",       "--alpha=1", "--beta", "2",
                        "positional", "--gamma",   "--delta=x=y"};
  FlagParser parser;
  ASSERT_TRUE(parser.Parse(7, argv).ok());
  EXPECT_EQ(parser.GetInt("alpha", 0), 1);
  EXPECT_EQ(parser.GetInt("beta", 0), 2);
  EXPECT_TRUE(parser.GetBool("gamma", false));
  EXPECT_EQ(parser.GetString("delta", ""), "x=y");
  ASSERT_EQ(parser.positional().size(), 1u);
  EXPECT_EQ(parser.positional()[0], "positional");
}

TEST(FlagsTest, DefaultsWhenAbsent) {
  const char* argv[] = {"prog"};
  FlagParser parser;
  ASSERT_TRUE(parser.Parse(1, argv).ok());
  EXPECT_EQ(parser.GetInt("missing", 9), 9);
  EXPECT_EQ(parser.GetDouble("missing", 1.5), 1.5);
  EXPECT_FALSE(parser.Has("missing"));
}

}  // namespace
}  // namespace grape
