#include <string>
#include <tuple>

#include "apps/bfs.h"
#include "apps/cc.h"
#include "apps/seq/seq_algorithms.h"
#include "core/engine.h"
#include "graph/generators.h"
#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace grape {
namespace {

Graph ManyComponentsGraph() {
  // Five islands of varying shapes.
  GraphBuilder builder(false);
  VertexId base = 0;
  for (VertexId size : {30u, 1u, 17u, 50u, 2u}) {
    if (size > 1) {
      auto island = GenerateRandomTree(size, 211 + base, false);
      EXPECT_TRUE(island.ok());
      for (const Edge& e : island->ToEdgeList()) {
        builder.AddEdge(e.src + base, e.dst + base, e.weight);
      }
    } else {
      builder.AddVertex(base);
    }
    base += size;
  }
  auto g = std::move(builder).Build();
  EXPECT_TRUE(g.ok());
  return std::move(g).value();
}

using Param = std::tuple<std::string, FragmentId>;

class CcMatrixTest : public ::testing::TestWithParam<Param> {};

TEST_P(CcMatrixTest, MatchesUnionFind) {
  const auto& [strategy, nfrag] = GetParam();
  Graph g = ManyComponentsGraph();
  FragmentedGraph fg = testing::MakeFragments(g, strategy, nfrag);
  std::vector<VertexId> expected = SeqConnectedComponents(g);

  GrapeEngine<CcApp> engine(fg, CcApp{});
  auto out = engine.Run(CcQuery{});
  ASSERT_TRUE(out.ok()) << out.status();
  ASSERT_EQ(out->label.size(), g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(out->label[v], expected[v]) << "vertex " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, CcMatrixTest,
    ::testing::Combine(::testing::Values("hash", "range", "metis"),
                       ::testing::Values(FragmentId{1}, FragmentId{3},
                                         FragmentId{8})),
    [](const auto& info) {
      return std::get<0>(info.param) + "_" +
             std::to_string(std::get<1>(info.param));
    });

TEST(CcTest, DirectedGraphUsesWeakComponents) {
  // A directed cycle fragmentable anywhere plus a stray path.
  GraphBuilder builder(true);
  for (VertexId v = 0; v < 10; ++v) builder.AddEdge(v, (v + 1) % 10);
  builder.AddEdge(20, 21);
  builder.AddEdge(22, 21);  // 20,21,22 weakly connected
  auto g = std::move(builder).Build();
  ASSERT_TRUE(g.ok());
  FragmentedGraph fg = testing::MakeFragments(*g, "hash", 4);
  GrapeEngine<CcApp> engine(fg, CcApp{});
  auto out = engine.Run(CcQuery{});
  ASSERT_TRUE(out.ok());
  std::vector<VertexId> expected = SeqConnectedComponents(*g);
  for (VertexId v = 0; v < g->num_vertices(); ++v) {
    EXPECT_EQ(out->label[v], expected[v]);
  }
  EXPECT_EQ(out->label[21], 20u);
}

TEST(CcTest, MonotonicityHolds) {
  Graph g = ManyComponentsGraph();
  FragmentedGraph fg = testing::MakeFragments(g, "hash", 6);
  EngineOptions opts;
  opts.check_monotonicity = true;
  GrapeEngine<CcApp> engine(fg, CcApp{}, opts);
  ASSERT_TRUE(engine.Run(CcQuery{}).ok());
  EXPECT_EQ(engine.metrics().monotonicity_violations, 0u);
}

class BfsMatrixTest : public ::testing::TestWithParam<Param> {};

TEST_P(BfsMatrixTest, MatchesSequentialBfs) {
  const auto& [strategy, nfrag] = GetParam();
  RMatOptions opts;
  opts.scale = 9;
  opts.edge_factor = 5;
  opts.seed = 223;
  auto g = GenerateRMat(opts);
  ASSERT_TRUE(g.ok());
  FragmentedGraph fg = testing::MakeFragments(*g, strategy, nfrag);
  std::vector<uint32_t> expected = SeqBfs(*g, 3);

  GrapeEngine<BfsApp> engine(fg, BfsApp{});
  auto out = engine.Run(BfsQuery{3});
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->depth.size(), g->num_vertices());
  for (VertexId v = 0; v < g->num_vertices(); ++v) {
    EXPECT_EQ(out->depth[v], expected[v]) << "vertex " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, BfsMatrixTest,
    ::testing::Combine(::testing::Values("hash", "ldg"),
                       ::testing::Values(FragmentId{1}, FragmentId{5})),
    [](const auto& info) {
      return std::get<0>(info.param) + "_" +
             std::to_string(std::get<1>(info.param));
    });

TEST(BfsTest, UnreachableStaysMax) {
  GraphBuilder builder(true);
  builder.AddEdge(0, 1);
  builder.AddVertex(5);
  auto g = std::move(builder).Build();
  ASSERT_TRUE(g.ok());
  FragmentedGraph fg = testing::MakeFragments(*g, "hash", 2);
  GrapeEngine<BfsApp> engine(fg, BfsApp{});
  auto out = engine.Run(BfsQuery{0});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->depth[0], 0u);
  EXPECT_EQ(out->depth[1], 1u);
  EXPECT_EQ(out->depth[5], UINT32_MAX);
}

TEST(BfsTest, PathDepthIsLinear) {
  auto g = GeneratePath(64, /*directed=*/true);
  ASSERT_TRUE(g.ok());
  FragmentedGraph fg = testing::MakeFragments(*g, "range", 4);
  GrapeEngine<BfsApp> engine(fg, BfsApp{});
  auto out = engine.Run(BfsQuery{0});
  ASSERT_TRUE(out.ok());
  for (VertexId v = 0; v < 64; ++v) EXPECT_EQ(out->depth[v], v);
  // A contiguous range partition crosses fragment borders 3 times, so the
  // fixed point takes ~4 supersteps, not 64 (whole-fragment evaluation).
  EXPECT_LE(engine.metrics().supersteps, 6u);
}

}  // namespace
}  // namespace grape
