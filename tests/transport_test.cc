#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "baseline/transport.h"
#include "graph/generators.h"
#include "gtest/gtest.h"
#include "rt/comm_world.h"
#include "tests/test_util.h"

namespace grape {
namespace {

// The vertex-addressed message bus of the baseline engines, run over every
// Transport backend (the bus only talks to the interface). After
// bus.Flush() serializes and Sends, world->Flush() is the delivery barrier
// that makes the batches visible — a no-op in-process, a real wait over
// sockets.
class TransportTest : public ::testing::TestWithParam<std::string> {
 protected:
  void SetUp() override {
    auto g = GeneratePath(8, /*directed=*/true);
    ASSERT_TRUE(g.ok());
    fg_ = testing::MakeFragments(*g, "range", 2);
    auto world = MakeTransport(GetParam(), 2);
    ASSERT_TRUE(world.ok()) << world.status();
    world_ = std::move(world).value();
  }

  FragmentedGraph fg_;
  std::unique_ptr<Transport> world_;
};

TEST_P(TransportTest, RoutesToOwner) {
  VertexMessageBus<double> bus(world_.get(), &fg_, /*self=*/0);
  // Vertex 6 is owned by fragment 1 under the range partition of a path.
  FragmentId owner6 = (*fg_.owner)[6];
  bus.Send(6, 3.5);
  ASSERT_TRUE(bus.Flush().ok());
  ASSERT_TRUE(world_->Flush().ok());

  std::unordered_map<LocalId, std::vector<double>> inbox;
  VertexMessageBus<double> receiver(world_.get(), &fg_, owner6);
  auto count = receiver.Receive(fg_.fragments[owner6], &inbox);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 1u);
  LocalId lid = fg_.fragments[owner6].Lid(6);
  ASSERT_EQ(inbox.count(lid), 1u);
  EXPECT_DOUBLE_EQ(inbox[lid][0], 3.5);
}

TEST_P(TransportTest, CombinerMergesPerVertex) {
  VertexMessageBus<double> bus(world_.get(), &fg_, 0);
  auto min_combine = [](double a, double b) { return std::min(a, b); };
  bus.SendCombined(6, 9.0, min_combine);
  bus.SendCombined(6, 4.0, min_combine);
  bus.SendCombined(6, 7.0, min_combine);
  bus.SendCombined(7, 1.0, min_combine);
  EXPECT_EQ(bus.logical_sent(), 2u);  // one slot per destination vertex
  ASSERT_TRUE(bus.Flush().ok());
  ASSERT_TRUE(world_->Flush().ok());

  FragmentId dst = (*fg_.owner)[6];
  std::unordered_map<LocalId, std::vector<double>> inbox;
  VertexMessageBus<double> receiver(world_.get(), &fg_, dst);
  auto count = receiver.Receive(fg_.fragments[dst], &inbox);
  ASSERT_TRUE(count.ok());
  LocalId lid6 = fg_.fragments[dst].Lid(6);
  ASSERT_EQ(inbox[lid6].size(), 1u);
  EXPECT_DOUBLE_EQ(inbox[lid6][0], 4.0);  // combined minimum
}

TEST_P(TransportTest, UncombinedKeepsEveryMessage) {
  VertexMessageBus<double> bus(world_.get(), &fg_, 0);
  bus.Send(6, 1.0);
  bus.Send(6, 2.0);
  EXPECT_EQ(bus.logical_sent(), 2u);
  ASSERT_TRUE(bus.Flush().ok());
  ASSERT_TRUE(world_->Flush().ok());
  FragmentId dst = (*fg_.owner)[6];
  std::unordered_map<LocalId, std::vector<double>> inbox;
  VertexMessageBus<double> receiver(world_.get(), &fg_, dst);
  ASSERT_TRUE(receiver.Receive(fg_.fragments[dst], &inbox).ok());
  EXPECT_EQ(inbox[fg_.fragments[dst].Lid(6)].size(), 2u);
}

TEST_P(TransportTest, MessageForForeignVertexIsAnError) {
  VertexMessageBus<double> bus(world_.get(), &fg_, 0);
  bus.Send(1, 1.0);  // vertex 1 is owned by fragment 0
  ASSERT_TRUE(bus.Flush().ok());
  ASSERT_TRUE(world_->Flush().ok());
  // Deliver fragment 0's message to fragment 1's receiver: wrong owner.
  auto msg = world_->TryRecv(0, kTagVertexMessage);
  ASSERT_TRUE(msg.has_value());
  ASSERT_TRUE(world_->Send(0, 1, kTagVertexMessage, msg->payload).ok());
  ASSERT_TRUE(world_->Flush().ok());
  std::unordered_map<LocalId, std::vector<double>> inbox;
  VertexMessageBus<double> receiver(world_.get(), &fg_, 1);
  auto count = receiver.Receive(fg_.fragments[1], &inbox);
  EXPECT_FALSE(count.ok());
  EXPECT_TRUE(count.status().IsInternal());
}

TEST_P(TransportTest, FlushIsIdempotentWhenEmpty) {
  VertexMessageBus<double> bus(world_.get(), &fg_, 0);
  ASSERT_TRUE(bus.Flush().ok());
  ASSERT_TRUE(bus.Flush().ok());
  ASSERT_TRUE(world_->Flush().ok());
  EXPECT_EQ(world_->PendingCount(0), 0u);
  EXPECT_EQ(world_->PendingCount(1), 0u);
}

TEST_P(TransportTest, BatchesPerDestinationWorker) {
  VertexMessageBus<double> bus(world_.get(), &fg_, 0);
  // 4 messages to fragment-1 vertices => exactly one wire message.
  bus.Send(4, 1.0);
  bus.Send(5, 1.0);
  bus.Send(6, 1.0);
  bus.Send(7, 1.0);
  ASSERT_TRUE(bus.Flush().ok());
  ASSERT_TRUE(world_->Flush().ok());
  EXPECT_EQ(world_->PendingCount(1), 1u);
}

INSTANTIATE_TEST_SUITE_P(Backends, TransportTest,
                         ::testing::ValuesIn(TransportNames()),
                         [](const auto& info) { return info.param; });

// ---------------------------------------------------------------------------
// Shutdown semantics (the Recv-blocks-forever fix): Close() must wake every
// blocked receiver with a Status instead of leaving threads parked on the
// mailbox condition variable for good.
// ---------------------------------------------------------------------------

TEST(TransportShutdownTest, CloseWakesManyConcurrentBlockedReceivers) {
  CommWorld world(4);
  constexpr int kReceiversPerRank = 3;
  std::atomic<int> woke_cancelled{0};
  std::vector<std::thread> receivers;
  for (uint32_t rank = 0; rank < 4; ++rank) {
    for (int k = 0; k < kReceiversPerRank; ++k) {
      receivers.emplace_back([&world, &woke_cancelled, rank] {
        auto msg = world.Recv(rank);
        if (!msg.ok() && msg.status().IsCancelled()) woke_cancelled++;
      });
    }
  }
  // Give every thread time to actually block in Recv, then shut down once.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  world.Close();
  for (auto& th : receivers) th.join();
  EXPECT_EQ(woke_cancelled.load(), 4 * kReceiversPerRank);
}

TEST(TransportShutdownTest, RecvAfterCloseReturnsImmediately) {
  CommWorld world(2);
  world.Close();
  auto msg = world.Recv(1);
  ASSERT_FALSE(msg.ok());
  EXPECT_TRUE(msg.status().IsCancelled());
}

TEST(TransportShutdownTest, PendingMessageWinsOverClose) {
  // A message delivered before Close must still be receivable: Close stops
  // the world, it does not destroy mail already in the box.
  CommWorld world(2);
  ASSERT_TRUE(world.Send(0, 1, kTagControl, {5}).ok());
  world.Close();
  auto msg = world.TryRecv(1);
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->payload[0], 5);
  EXPECT_TRUE(world.Send(0, 1, kTagControl, {6}).IsCancelled());
}

TEST(TransportShutdownTest, CloseIsIdempotentAndRaceFree) {
  CommWorld world(2);
  std::thread blocked([&world] {
    auto msg = world.Recv(0);
    EXPECT_FALSE(msg.ok());
  });
  std::vector<std::thread> closers;
  for (int i = 0; i < 4; ++i) {
    closers.emplace_back([&world] { world.Close(); });
  }
  for (auto& th : closers) th.join();
  blocked.join();
}

}  // namespace
}  // namespace grape
