#include <algorithm>
#include <unordered_map>

#include "baseline/transport.h"
#include "graph/generators.h"
#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace grape {
namespace {

class TransportTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto g = GeneratePath(8, /*directed=*/true);
    ASSERT_TRUE(g.ok());
    fg_ = testing::MakeFragments(*g, "range", 2);
    world_ = std::make_unique<CommWorld>(2);
  }

  FragmentedGraph fg_;
  std::unique_ptr<CommWorld> world_;
};

TEST_F(TransportTest, RoutesToOwner) {
  VertexMessageBus<double> bus(world_.get(), &fg_, /*self=*/0);
  // Vertex 6 is owned by fragment 1 under the range partition of a path.
  FragmentId owner6 = (*fg_.owner)[6];
  bus.Send(6, 3.5);
  ASSERT_TRUE(bus.Flush().ok());

  std::unordered_map<LocalId, std::vector<double>> inbox;
  VertexMessageBus<double> receiver(world_.get(), &fg_, owner6);
  auto count = receiver.Receive(fg_.fragments[owner6], &inbox);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 1u);
  LocalId lid = fg_.fragments[owner6].Lid(6);
  ASSERT_EQ(inbox.count(lid), 1u);
  EXPECT_DOUBLE_EQ(inbox[lid][0], 3.5);
}

TEST_F(TransportTest, CombinerMergesPerVertex) {
  VertexMessageBus<double> bus(world_.get(), &fg_, 0);
  auto min_combine = [](double a, double b) { return std::min(a, b); };
  bus.SendCombined(6, 9.0, min_combine);
  bus.SendCombined(6, 4.0, min_combine);
  bus.SendCombined(6, 7.0, min_combine);
  bus.SendCombined(7, 1.0, min_combine);
  EXPECT_EQ(bus.logical_sent(), 2u);  // one slot per destination vertex
  ASSERT_TRUE(bus.Flush().ok());

  FragmentId dst = (*fg_.owner)[6];
  std::unordered_map<LocalId, std::vector<double>> inbox;
  VertexMessageBus<double> receiver(world_.get(), &fg_, dst);
  auto count = receiver.Receive(fg_.fragments[dst], &inbox);
  ASSERT_TRUE(count.ok());
  LocalId lid6 = fg_.fragments[dst].Lid(6);
  ASSERT_EQ(inbox[lid6].size(), 1u);
  EXPECT_DOUBLE_EQ(inbox[lid6][0], 4.0);  // combined minimum
}

TEST_F(TransportTest, UncombinedKeepsEveryMessage) {
  VertexMessageBus<double> bus(world_.get(), &fg_, 0);
  bus.Send(6, 1.0);
  bus.Send(6, 2.0);
  EXPECT_EQ(bus.logical_sent(), 2u);
  ASSERT_TRUE(bus.Flush().ok());
  FragmentId dst = (*fg_.owner)[6];
  std::unordered_map<LocalId, std::vector<double>> inbox;
  VertexMessageBus<double> receiver(world_.get(), &fg_, dst);
  ASSERT_TRUE(receiver.Receive(fg_.fragments[dst], &inbox).ok());
  EXPECT_EQ(inbox[fg_.fragments[dst].Lid(6)].size(), 2u);
}

TEST_F(TransportTest, MessageForForeignVertexIsAnError) {
  VertexMessageBus<double> bus(world_.get(), &fg_, 0);
  bus.Send(1, 1.0);  // vertex 1 is owned by fragment 0
  ASSERT_TRUE(bus.Flush().ok());
  // Deliver fragment 0's message to fragment 1's receiver: wrong owner.
  auto msg = world_->TryRecv(0, kTagVertexMessage);
  ASSERT_TRUE(msg.has_value());
  ASSERT_TRUE(world_->Send(0, 1, kTagVertexMessage, msg->payload).ok());
  std::unordered_map<LocalId, std::vector<double>> inbox;
  VertexMessageBus<double> receiver(world_.get(), &fg_, 1);
  auto count = receiver.Receive(fg_.fragments[1], &inbox);
  EXPECT_FALSE(count.ok());
  EXPECT_TRUE(count.status().IsInternal());
}

TEST_F(TransportTest, FlushIsIdempotentWhenEmpty) {
  VertexMessageBus<double> bus(world_.get(), &fg_, 0);
  ASSERT_TRUE(bus.Flush().ok());
  ASSERT_TRUE(bus.Flush().ok());
  EXPECT_EQ(world_->PendingCount(0), 0u);
  EXPECT_EQ(world_->PendingCount(1), 0u);
}

TEST_F(TransportTest, BatchesPerDestinationWorker) {
  VertexMessageBus<double> bus(world_.get(), &fg_, 0);
  // 4 messages to fragment-1 vertices => exactly one wire message.
  bus.Send(4, 1.0);
  bus.Send(5, 1.0);
  bus.Send(6, 1.0);
  bus.Send(7, 1.0);
  ASSERT_TRUE(bus.Flush().ok());
  EXPECT_EQ(world_->PendingCount(1), 1u);
}

}  // namespace
}  // namespace grape
