#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <tuple>

#include "graph/generators.h"
#include "gtest/gtest.h"
#include "partition/fragment.h"
#include "tests/test_util.h"

namespace grape {
namespace {

Graph MakeTestGraph(const std::string& kind) {
  if (kind == "directed_rmat") {
    RMatOptions opts;
    opts.scale = 8;
    opts.edge_factor = 6;
    opts.seed = 71;
    auto g = GenerateRMat(opts);
    EXPECT_TRUE(g.ok());
    return std::move(g).value();
  }
  if (kind == "undirected_er") {
    auto g = GenerateErdosRenyi(300, 900, /*directed=*/false, 73);
    EXPECT_TRUE(g.ok());
    return std::move(g).value();
  }
  auto g = GenerateGridRoad(16, 16, 79);
  EXPECT_TRUE(g.ok());
  return std::move(g).value();
}

/// (graph kind, partitioner, fragments)
using FragmentParam = std::tuple<std::string, std::string, FragmentId>;

class FragmentInvariantTest
    : public ::testing::TestWithParam<FragmentParam> {};

TEST_P(FragmentInvariantTest, StructuralInvariants) {
  const auto& [kind, strategy, nfrag] = GetParam();
  Graph g = MakeTestGraph(kind);
  FragmentedGraph fg = testing::MakeFragments(g, strategy, nfrag);
  ASSERT_EQ(fg.fragments.size(), nfrag);

  // (1) Every vertex is inner in exactly one fragment.
  std::vector<int> owners(g.num_vertices(), 0);
  for (const Fragment& frag : fg.fragments) {
    for (LocalId lid = 0; lid < frag.num_inner(); ++lid) {
      owners[frag.Gid(lid)]++;
      EXPECT_EQ((*fg.owner)[frag.Gid(lid)], frag.fid());
    }
  }
  for (int c : owners) EXPECT_EQ(c, 1);

  // (2) Edge conservation: the inner out-rows across fragments reproduce
  // the global arc multiset exactly.
  std::multiset<std::tuple<VertexId, VertexId, double>> global_arcs;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    for (const Neighbor& nb : g.OutNeighbors(v)) {
      global_arcs.insert({v, nb.vertex, nb.weight});
    }
  }
  std::multiset<std::tuple<VertexId, VertexId, double>> frag_arcs;
  for (const Fragment& frag : fg.fragments) {
    for (LocalId lid = 0; lid < frag.num_inner(); ++lid) {
      for (const FragNeighbor& nb : frag.OutNeighbors(lid)) {
        frag_arcs.insert({frag.Gid(lid), frag.Gid(nb.local), nb.weight});
      }
    }
  }
  EXPECT_EQ(global_arcs, frag_arcs);

  // (3) Id mapping is involutive and outer/inner split is consistent.
  for (const Fragment& frag : fg.fragments) {
    for (LocalId lid = 0; lid < frag.num_local(); ++lid) {
      EXPECT_EQ(frag.Lid(frag.Gid(lid)), lid);
      EXPECT_EQ(frag.IsInner(lid), lid < frag.num_inner());
      if (frag.IsOuter(lid)) {
        EXPECT_NE((*fg.owner)[frag.Gid(lid)], frag.fid());
      }
    }
  }

  // (4) Mirror tables: v's mirror list at its owner is exactly the set of
  // fragments where v appears as outer.
  std::map<VertexId, std::set<FragmentId>> outer_hosts;
  for (const Fragment& frag : fg.fragments) {
    for (LocalId lid = frag.num_inner(); lid < frag.num_local(); ++lid) {
      outer_hosts[frag.Gid(lid)].insert(frag.fid());
    }
  }
  for (const Fragment& frag : fg.fragments) {
    for (LocalId lid = 0; lid < frag.num_inner(); ++lid) {
      auto mirrors = frag.MirrorFragments(lid);
      std::set<FragmentId> mirror_set(mirrors.begin(), mirrors.end());
      auto it = outer_hosts.find(frag.Gid(lid));
      std::set<FragmentId> expected =
          it == outer_hosts.end() ? std::set<FragmentId>{} : it->second;
      EXPECT_EQ(mirror_set, expected);
    }
  }

  // (5) Border flags: inner vertex is border iff some incident arc crosses.
  for (const Fragment& frag : fg.fragments) {
    for (LocalId lid = 0; lid < frag.num_inner(); ++lid) {
      VertexId gid = frag.Gid(lid);
      bool crosses = false;
      for (const Neighbor& nb : g.OutNeighbors(gid)) {
        crosses |= (*fg.owner)[nb.vertex] != frag.fid();
      }
      for (const Neighbor& nb : g.InNeighbors(gid)) {
        crosses |= (*fg.owner)[nb.vertex] != frag.fid();
      }
      EXPECT_EQ(frag.IsBorder(lid), crosses) << "gid " << gid;
    }
  }

  // (6) Outer adjacency rows: exactly the cross arcs into/out of the inner
  // set, with correct reversal.
  for (const Fragment& frag : fg.fragments) {
    for (LocalId lid = frag.num_inner(); lid < frag.num_local(); ++lid) {
      VertexId outer_gid = frag.Gid(lid);
      // Out-row of the outer vertex must list inner targets reachable in
      // the global graph.
      size_t expected_out = 0;
      for (const Neighbor& nb : g.OutNeighbors(outer_gid)) {
        if ((*fg.owner)[nb.vertex] == frag.fid()) ++expected_out;
      }
      EXPECT_EQ(frag.OutNeighbors(lid).size(), expected_out);
      for (const FragNeighbor& nb : frag.OutNeighbors(lid)) {
        EXPECT_TRUE(frag.IsInner(nb.local));
      }
    }
  }

  // (7) Labels replicated onto all local copies.
  if (g.has_vertex_labels()) {
    for (const Fragment& frag : fg.fragments) {
      for (LocalId lid = 0; lid < frag.num_local(); ++lid) {
        EXPECT_EQ(frag.vertex_label(lid), g.vertex_label(frag.Gid(lid)));
      }
    }
  }

  // (8) Routing plans agree with the hash-based resolution they replace:
  // every precomputed dst_lid is exactly what Lid()/OwnerOf() would find.
  ASSERT_NE(fg.owner_lid, nullptr);
  for (const Fragment& frag : fg.fragments) {
    // owner_lid table: gid's slot at its owner.
    for (LocalId lid = 0; lid < frag.num_local(); ++lid) {
      VertexId gid = frag.Gid(lid);
      const Fragment& owner = fg.fragments[frag.OwnerOf(gid)];
      EXPECT_EQ(frag.LidAtOwner(gid), owner.Lid(gid)) << "gid " << gid;
    }
    // Outer owner routes.
    for (LocalId lid = frag.num_inner(); lid < frag.num_local(); ++lid) {
      VertexId gid = frag.Gid(lid);
      EXPECT_EQ(frag.OuterOwner(lid), frag.OwnerOf(gid));
      const Fragment& owner = fg.fragments[frag.OwnerOf(gid)];
      EXPECT_EQ(frag.OuterOwnerLid(lid), owner.Lid(gid));
      EXPECT_LT(frag.OuterOwnerLid(lid), owner.num_inner());
    }
    // Mirror dst_lids pair with MirrorFragments and land on outer copies.
    for (LocalId lid = 0; lid < frag.num_inner(); ++lid) {
      auto mirror_frags = frag.MirrorFragments(lid);
      auto mirror_lids = frag.MirrorDstLids(lid);
      ASSERT_EQ(mirror_frags.size(), mirror_lids.size());
      for (size_t k = 0; k < mirror_frags.size(); ++k) {
        const Fragment& dst = fg.fragments[mirror_frags[k]];
        EXPECT_EQ(mirror_lids[k], dst.Lid(frag.Gid(lid)));
        EXPECT_TRUE(dst.IsOuter(mirror_lids[k]));
        EXPECT_EQ(dst.Gid(mirror_lids[k]), frag.Gid(lid));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, FragmentInvariantTest,
    ::testing::Combine(::testing::Values("directed_rmat", "undirected_er",
                                         "grid"),
                       ::testing::Values("hash", "range", "metis", "ldg"),
                       ::testing::Values(FragmentId{1}, FragmentId{4},
                                         FragmentId{7})),
    [](const auto& info) {
      return std::get<0>(info.param) + "_" + std::get<1>(info.param) + "_" +
             std::to_string(std::get<2>(info.param));
    });

TEST(FragmentBuilderTest, RoutingPlansOnRandomAssignments) {
  // Adversarial partitions no real partitioner would emit: uniformly random
  // vertex->fragment maps, including empty fragments. The dst_lid tables
  // must still agree with hash resolution everywhere.
  RMatOptions opts;
  opts.scale = 7;
  opts.edge_factor = 5;
  opts.seed = 83;
  auto g = GenerateRMat(opts);
  ASSERT_TRUE(g.ok());
  uint64_t state = 0x243f6a8885a308d3ULL;
  auto next = [&state] {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return state >> 33;
  };
  for (int trial = 0; trial < 5; ++trial) {
    FragmentId nfrag = static_cast<FragmentId>(2 + next() % 9);
    std::vector<FragmentId> assignment(g->num_vertices());
    for (auto& a : assignment) {
      a = static_cast<FragmentId>(next() % nfrag);
    }
    auto fg = FragmentBuilder::Build(*g, assignment, nfrag);
    ASSERT_TRUE(fg.ok());
    for (const Fragment& frag : fg->fragments) {
      for (LocalId lid = frag.num_inner(); lid < frag.num_local(); ++lid) {
        VertexId gid = frag.Gid(lid);
        const Fragment& owner = fg->fragments[frag.OwnerOf(gid)];
        ASSERT_EQ(frag.OuterOwner(lid), frag.OwnerOf(gid));
        ASSERT_EQ(frag.OuterOwnerLid(lid), owner.Lid(gid));
      }
      for (LocalId lid = 0; lid < frag.num_inner(); ++lid) {
        auto mirror_frags = frag.MirrorFragments(lid);
        auto mirror_lids = frag.MirrorDstLids(lid);
        ASSERT_EQ(mirror_frags.size(), mirror_lids.size());
        for (size_t k = 0; k < mirror_frags.size(); ++k) {
          ASSERT_EQ(mirror_lids[k],
                    fg->fragments[mirror_frags[k]].Lid(frag.Gid(lid)));
        }
      }
    }
  }
}

TEST(FragmentBuilderTest, RejectsBadAssignment) {
  auto g = GeneratePath(5);
  ASSERT_TRUE(g.ok());
  std::vector<FragmentId> wrong_size(3, 0);
  EXPECT_FALSE(FragmentBuilder::Build(*g, wrong_size, 2).ok());
  std::vector<FragmentId> out_of_range(5, 9);
  EXPECT_FALSE(FragmentBuilder::Build(*g, out_of_range, 2).ok());
  std::vector<FragmentId> ok_assign(5, 0);
  EXPECT_FALSE(FragmentBuilder::Build(*g, ok_assign, 0).ok());
}

TEST(FragmentBuilderTest, EmptyFragmentsAllowed) {
  auto g = GeneratePath(4);
  ASSERT_TRUE(g.ok());
  // All vertices on fragment 0 of 3: fragments 1 and 2 are empty.
  std::vector<FragmentId> assignment(4, 0);
  auto fg = FragmentBuilder::Build(*g, assignment, 3);
  ASSERT_TRUE(fg.ok());
  EXPECT_EQ(fg->fragments[1].num_inner(), 0u);
  EXPECT_EQ(fg->fragments[1].num_local(), 0u);
  EXPECT_EQ(fg->fragments[0].num_border(), 0u);
}

TEST(FragmentBuilderTest, LinearChainAcrossTwoFragments) {
  // 0 -> 1 -> 2 -> 3 with {0,1} on f0 and {2,3} on f1.
  GraphBuilder builder(true);
  builder.AddEdge(0, 1, 1.0);
  builder.AddEdge(1, 2, 1.0);
  builder.AddEdge(2, 3, 1.0);
  auto g = std::move(builder).Build();
  ASSERT_TRUE(g.ok());
  auto fg = FragmentBuilder::Build(*g, {0, 0, 1, 1}, 2);
  ASSERT_TRUE(fg.ok());

  const Fragment& f0 = fg->fragments[0];
  const Fragment& f1 = fg->fragments[1];
  EXPECT_EQ(f0.num_inner(), 2u);
  EXPECT_EQ(f0.num_outer(), 1u);  // mirror of 2
  EXPECT_EQ(f1.num_outer(), 1u);  // mirror of 1
  EXPECT_TRUE(f0.IsBorder(f0.Lid(1)));
  EXPECT_FALSE(f0.IsBorder(f0.Lid(0)));
  EXPECT_TRUE(f1.IsBorder(f1.Lid(2)));
  EXPECT_FALSE(f1.IsBorder(f1.Lid(3)));

  // Mirror routing: vertex 1 (owned by f0) is mirrored at f1.
  auto mirrors = f0.MirrorFragments(f0.Lid(1));
  ASSERT_EQ(mirrors.size(), 1u);
  EXPECT_EQ(mirrors[0], 1u);
}

}  // namespace
}  // namespace grape
