#include <cstdint>
#include <vector>

#include "core/aggregators.h"
#include "core/param_store.h"
#include "gtest/gtest.h"

namespace grape {
namespace {

TEST(AggregatorsTest, MinAggregator) {
  double cur = 10.0;
  EXPECT_TRUE(MinAggregator<double>::Aggregate(cur, 5.0));
  EXPECT_DOUBLE_EQ(cur, 5.0);
  EXPECT_FALSE(MinAggregator<double>::Aggregate(cur, 7.0));
  EXPECT_DOUBLE_EQ(cur, 5.0);
  EXPECT_TRUE(MinAggregator<double>::InOrder(3.0, 5.0));
  EXPECT_FALSE(MinAggregator<double>::InOrder(6.0, 5.0));
  EXPECT_TRUE(MinAggregator<double>::InOrder(5.0, 5.0));
}

TEST(AggregatorsTest, MaxAggregator) {
  int cur = 1;
  EXPECT_TRUE(MaxAggregator<int>::Aggregate(cur, 4));
  EXPECT_EQ(cur, 4);
  EXPECT_FALSE(MaxAggregator<int>::Aggregate(cur, 2));
  EXPECT_TRUE(MaxAggregator<int>::InOrder(5, 4));
  EXPECT_FALSE(MaxAggregator<int>::InOrder(3, 4));
}

TEST(AggregatorsTest, SumAggregator) {
  double cur = 1.5;
  EXPECT_TRUE(SumAggregator<double>::Aggregate(cur, 2.0));
  EXPECT_DOUBLE_EQ(cur, 3.5);
  EXPECT_FALSE(SumAggregator<double>::Aggregate(cur, 0.0));
  EXPECT_DOUBLE_EQ(cur, 3.5);
}

TEST(AggregatorsTest, OverwriteAggregator) {
  int cur = 1;
  EXPECT_TRUE(OverwriteAggregator<int>::Aggregate(cur, 2));
  EXPECT_EQ(cur, 2);
  EXPECT_FALSE(OverwriteAggregator<int>::Aggregate(cur, 2));
}

TEST(AggregatorsTest, BitAndShrinksMonotonically) {
  uint64_t cur = 0b1111;
  EXPECT_TRUE(BitAndAggregator::Aggregate(cur, 0b1010));
  EXPECT_EQ(cur, 0b1010u);
  EXPECT_FALSE(BitAndAggregator::Aggregate(cur, 0b1111));
  EXPECT_TRUE(BitAndAggregator::InOrder(0b0010, 0b1010));
  EXPECT_FALSE(BitAndAggregator::InOrder(0b0100, 0b1010));
}

TEST(AggregatorsTest, AppendAggregatorGrows) {
  std::vector<std::vector<uint32_t>> cur;
  std::vector<std::vector<uint32_t>> in = {{1, 2}, {3}};
  EXPECT_TRUE(AppendAggregator<std::vector<uint32_t>>::Aggregate(cur, in));
  EXPECT_EQ(cur.size(), 2u);
  EXPECT_FALSE(AppendAggregator<std::vector<uint32_t>>::Aggregate(cur, {}));
  EXPECT_EQ(cur.size(), 2u);
}

TEST(AggregatorsTest, ElementwiseMin) {
  std::vector<double> cur = {5.0, 1.0};
  EXPECT_TRUE(ElementwiseMinAggregator::Aggregate(cur, {3.0, 2.0}));
  EXPECT_DOUBLE_EQ(cur[0], 3.0);
  EXPECT_DOUBLE_EQ(cur[1], 1.0);
  EXPECT_FALSE(ElementwiseMinAggregator::Aggregate(cur, {4.0, 2.0}));
  // Longer incoming extends (missing entries behave like +inf).
  EXPECT_TRUE(ElementwiseMinAggregator::Aggregate(cur, {9.0, 9.0, 7.0}));
  ASSERT_EQ(cur.size(), 3u);
  EXPECT_DOUBLE_EQ(cur[2], 7.0);
  EXPECT_TRUE(ElementwiseMinAggregator::InOrder({2.0, 1.0}, {3.0, 1.0}));
  EXPECT_FALSE(ElementwiseMinAggregator::InOrder({4.0}, {3.0}));
}

TEST(AggregatorsTest, MinIsCommutativeAndIdempotent) {
  // Property sweep: aggregation order must not change the fixed point.
  std::vector<double> inputs = {5.0, 1.0, 3.0, 1.0, 9.0};
  double forward = 100.0;
  for (double v : inputs) MinAggregator<double>::Aggregate(forward, v);
  double backward = 100.0;
  for (auto it = inputs.rbegin(); it != inputs.rend(); ++it) {
    MinAggregator<double>::Aggregate(backward, *it);
  }
  EXPECT_DOUBLE_EQ(forward, backward);
  double twice = forward;
  MinAggregator<double>::Aggregate(twice, forward);
  EXPECT_DOUBLE_EQ(twice, forward);
}

TEST(ParamStoreTest, InitAndGet) {
  ParamStore<double> store;
  store.Init(4, 1.5);
  EXPECT_EQ(store.size(), 4u);
  for (LocalId i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(store.Get(i), 1.5);
  EXPECT_TRUE(store.TakeChanged().empty());
}

TEST(ParamStoreTest, SetMarksChanged) {
  ParamStore<int> store;
  store.Init(5, 0);
  store.Set(2, 7);
  store.Set(4, 9);
  auto changed = store.TakeChanged();
  EXPECT_EQ(changed, (std::vector<LocalId>{2, 4}));
  // Drained: second take is empty.
  EXPECT_TRUE(store.TakeChanged().empty());
}

TEST(ParamStoreTest, SetIfChangedSkipsEqualValues) {
  ParamStore<int> store;
  store.Init(3, 5);
  EXPECT_FALSE(store.SetIfChanged(0, 5));
  EXPECT_TRUE(store.SetIfChanged(0, 6));
  auto changed = store.TakeChanged();
  EXPECT_EQ(changed, (std::vector<LocalId>{0}));
}

TEST(ParamStoreTest, UntrackedRefDoesNotMark) {
  ParamStore<int> store;
  store.Init(3, 0);
  store.UntrackedRef(1) = 42;
  EXPECT_TRUE(store.TakeChanged().empty());
  EXPECT_EQ(store.Get(1), 42);
  store.MarkChanged(1);
  EXPECT_EQ(store.TakeChanged(), (std::vector<LocalId>{1}));
}

TEST(ParamStoreTest, MutateMarks) {
  ParamStore<std::vector<int>> store;
  store.Init(2, {});
  store.Mutate(0).push_back(3);
  auto changed = store.TakeChanged();
  EXPECT_EQ(changed, (std::vector<LocalId>{0}));
  EXPECT_EQ(store.Get(0).size(), 1u);
}

TEST(ParamStoreTest, RemotePosts) {
  ParamStore<int> store;
  store.Init(1, 0);
  store.PostRemote(99, 7);
  store.PostRemote(42, 8);
  auto remote = store.TakeRemote();
  ASSERT_EQ(remote.size(), 2u);
  EXPECT_EQ(remote[0].first, 99u);
  EXPECT_EQ(remote[1].second, 8);
  EXPECT_TRUE(store.TakeRemote().empty());
}

TEST(ParamStoreTest, ReinitClearsState) {
  ParamStore<int> store;
  store.Init(2, 0);
  store.Set(0, 1);
  store.Init(3, 9);
  EXPECT_TRUE(store.TakeChanged().empty());
  EXPECT_EQ(store.size(), 3u);
  EXPECT_EQ(store.Get(2), 9);
}

}  // namespace
}  // namespace grape
