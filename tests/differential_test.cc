// Randomized differential testing: for a sweep of seeds, random graphs run
// through the PIE engine under a randomly chosen partitioner and worker
// count, and every answer is compared against the whole-graph sequential
// reference. This is the repository's broadest property: *parallelization
// never changes the answer* (the Assurance Theorem, empirically).

#include <string>

#include "apps/bfs.h"
#include "apps/cc.h"
#include "apps/kcore.h"
#include "apps/seq/seq_algorithms.h"
#include "apps/sim.h"
#include "apps/seq/seq_matching.h"
#include "apps/sssp.h"
#include "apps/triangle.h"
#include "core/engine.h"
#include "graph/generators.h"
#include "gtest/gtest.h"
#include "tests/test_util.h"
#include "util/random.h"

namespace grape {
namespace {

class DifferentialTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  /// Derives all the run's randomness from the sweep seed.
  void SetUp() override {
    rng_.Seed(GetParam() * 0x9e3779b97f4a7c15ULL + 1);
    const char* strategies[] = {"hash", "range",  "grid2d", "ldg",
                                "fennel", "metis", "voronoi"};
    strategy_ = strategies[rng_.NextBounded(7)];
    workers_ = static_cast<FragmentId>(1 + rng_.NextBounded(9));
  }

  Graph RandomGraph(bool directed) {
    switch (rng_.NextBounded(3)) {
      case 0: {
        VertexId n = 50 + static_cast<VertexId>(rng_.NextBounded(300));
        size_t m = n * (2 + rng_.NextBounded(6));
        auto g = GenerateErdosRenyi(n, m, directed, rng_.NextUint64());
        EXPECT_TRUE(g.ok());
        return std::move(g).value();
      }
      case 1: {
        RMatOptions opts;
        opts.scale = 7 + static_cast<uint32_t>(rng_.NextBounded(3));
        opts.edge_factor = 4 + static_cast<uint32_t>(rng_.NextBounded(6));
        opts.directed = directed;
        opts.seed = rng_.NextUint64();
        auto g = GenerateRMat(opts);
        EXPECT_TRUE(g.ok());
        return std::move(g).value();
      }
      default: {
        uint32_t side = 8 + static_cast<uint32_t>(rng_.NextBounded(20));
        auto g = GenerateGridRoad(side, side, rng_.NextUint64());
        EXPECT_TRUE(g.ok());
        return std::move(g).value();
      }
    }
  }

  Rng rng_{1};
  std::string strategy_;
  FragmentId workers_ = 1;
};

TEST_P(DifferentialTest, SsspAgreesWithDijkstra) {
  Graph g = RandomGraph(/*directed=*/true);
  VertexId source =
      static_cast<VertexId>(rng_.NextBounded(g.num_vertices()));
  FragmentedGraph fg = testing::MakeFragments(g, strategy_, workers_);
  GrapeEngine<SsspApp> engine(fg, SsspApp{});
  auto out = engine.Run(SsspQuery{source});
  ASSERT_TRUE(out.ok()) << strategy_ << "/" << workers_;
  auto expected = SeqDijkstra(g, source);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    ASSERT_DOUBLE_EQ(out->dist[v], expected[v])
        << "seed=" << GetParam() << " strategy=" << strategy_
        << " workers=" << workers_ << " vertex=" << v;
  }
}

TEST_P(DifferentialTest, CcAgreesWithUnionFind) {
  Graph g = RandomGraph(/*directed=*/false);
  FragmentedGraph fg = testing::MakeFragments(g, strategy_, workers_);
  GrapeEngine<CcApp> engine(fg, CcApp{});
  auto out = engine.Run(CcQuery{});
  ASSERT_TRUE(out.ok());
  auto expected = SeqConnectedComponents(g);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    ASSERT_EQ(out->label[v], expected[v])
        << "seed=" << GetParam() << " strategy=" << strategy_
        << " workers=" << workers_ << " vertex=" << v;
  }
}

TEST_P(DifferentialTest, KCoreAgreesWithPeeling) {
  Graph g = RandomGraph(/*directed=*/false);
  FragmentedGraph fg = testing::MakeFragments(g, strategy_, workers_);
  GrapeEngine<KCoreApp> engine(fg, KCoreApp{});
  auto out = engine.Run(KCoreQuery{});
  ASSERT_TRUE(out.ok());
  auto expected = SeqKCore(g);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    ASSERT_EQ(out->coreness[v], expected[v])
        << "seed=" << GetParam() << " strategy=" << strategy_
        << " workers=" << workers_ << " vertex=" << v;
  }
}

TEST_P(DifferentialTest, TriangleAgreesWithNodeIterator) {
  Graph g = RandomGraph(/*directed=*/false);
  FragmentedGraph fg = testing::MakeFragments(g, strategy_, workers_);
  GrapeEngine<TriangleApp> engine(fg, TriangleApp{});
  auto out = engine.Run(TriangleQuery{});
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->triangles, SeqTriangleCount(g))
      << "seed=" << GetParam() << " strategy=" << strategy_
      << " workers=" << workers_;
}

TEST_P(DifferentialTest, BfsAgreesWithSequential) {
  Graph g = RandomGraph(/*directed=*/true);
  VertexId source =
      static_cast<VertexId>(rng_.NextBounded(g.num_vertices()));
  FragmentedGraph fg = testing::MakeFragments(g, strategy_, workers_);
  GrapeEngine<BfsApp> engine(fg, BfsApp{});
  auto out = engine.Run(BfsQuery{source});
  ASSERT_TRUE(out.ok());
  auto expected = SeqBfs(g, source);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    ASSERT_EQ(out->depth[v], expected[v])
        << "seed=" << GetParam() << " strategy=" << strategy_
        << " workers=" << workers_ << " vertex=" << v;
  }
}

TEST_P(DifferentialTest, SimAgreesWithSequentialOnRandomPattern) {
  LabeledGraphOptions opts;
  opts.scale = 7 + static_cast<uint32_t>(rng_.NextBounded(2));
  opts.edge_factor = 4 + static_cast<uint32_t>(rng_.NextBounded(4));
  opts.num_vertex_labels = 2 + static_cast<uint32_t>(rng_.NextBounded(4));
  opts.seed = rng_.NextUint64();
  auto g = GenerateLabeledGraph(opts);
  ASSERT_TRUE(g.ok());

  // Random connected pattern: a labelled path of length 2-3 with a chance
  // of a closing edge.
  uint32_t k = 2 + static_cast<uint32_t>(rng_.NextBounded(2));
  std::vector<Label> labels;
  std::vector<PatternEdge> edges;
  for (uint32_t u = 0; u < k; ++u) {
    labels.push_back(
        static_cast<Label>(rng_.NextBounded(opts.num_vertex_labels)));
    if (u > 0) edges.push_back({u - 1, u, 0});
  }
  if (k == 3 && rng_.NextBool()) edges.push_back({k - 1, 0, 0});
  auto pattern = Pattern::Create(labels, edges);
  ASSERT_TRUE(pattern.ok());

  FragmentedGraph fg = testing::MakeFragments(*g, strategy_, workers_);
  GrapeEngine<SimApp> engine(fg, SimApp{});
  auto out = engine.Run(SimQuery{*pattern});
  ASSERT_TRUE(out.ok());
  auto expected = SeqSimulation(*g, *pattern);
  for (uint32_t u = 0; u < pattern->num_vertices(); ++u) {
    ASSERT_EQ(out->sim[u], expected[u])
        << "seed=" << GetParam() << " strategy=" << strategy_
        << " workers=" << workers_ << " pattern vertex=" << u;
  }
}

INSTANTIATE_TEST_SUITE_P(SeedSweep, DifferentialTest,
                         ::testing::Range<uint64_t>(0, 12),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace grape
