#include <algorithm>

#include "apps/cc.h"
#include "apps/seq/seq_algorithms.h"
#include "apps/sssp.h"
#include "core/engine.h"
#include "graph/generators.h"
#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace grape {
namespace {

/// Rebuilds a graph with extra edges appended.
Graph WithInsertedEdges(const Graph& g, const std::vector<Edge>& inserted) {
  GraphBuilder builder(g.is_directed());
  for (const Edge& e : g.ToEdgeList()) builder.AddEdge(e);
  for (const Edge& e : inserted) builder.AddEdge(e);
  auto out = std::move(builder).Build(g.num_vertices());
  EXPECT_TRUE(out.ok());
  return std::move(out).value();
}

uint64_t TotalUpdates(const EngineMetrics& m) {
  uint64_t total = 0;
  for (const RoundMetrics& r : m.rounds) total += r.updated_params;
  return total;
}

TEST(IncrementalTest, SsspAfterEdgeInsertions) {
  auto g = GenerateGridRoad(30, 30, 1101);
  ASSERT_TRUE(g.ok());
  FragmentedGraph fg_old = testing::MakeFragments(*g, "hash", 4);
  GrapeEngine<SsspApp> before(fg_old, SsspApp{});
  ASSERT_TRUE(before.Run(SsspQuery{0}).ok());

  // Insert a few shortcuts (both directions, as road segments).
  std::vector<Edge> inserted = {{5, 850, 1.0, 0},  {850, 5, 1.0, 0},
                                {12, 600, 0.5, 0}, {600, 12, 0.5, 0}};
  Graph updated = WithInsertedEdges(*g, inserted);
  std::vector<double> expected = SeqDijkstra(updated, 0);

  // Hash assignment depends only on ids, so the partition is unchanged and
  // the previous run's parameters carry over 1:1.
  FragmentedGraph fg_new = testing::MakeFragments(updated, "hash", 4);
  GrapeEngine<SsspApp> after(fg_new, SsspApp{});
  std::vector<VertexId> touched;
  for (const Edge& e : inserted) {
    touched.push_back(e.src);
    touched.push_back(e.dst);
  }
  auto out = after.RunIncremental(SsspQuery{0}, before, touched);
  ASSERT_TRUE(out.ok()) << out.status();
  ASSERT_EQ(out->dist.size(), updated.num_vertices());
  for (VertexId v = 0; v < updated.num_vertices(); ++v) {
    EXPECT_DOUBLE_EQ(out->dist[v], expected[v]) << "vertex " << v;
  }
}

TEST(IncrementalTest, WorkIsBoundedByAffectedRegion) {
  // A long-range shortcut changes only a neighbourhood of distances; the
  // incremental run must update far fewer parameters than recomputing.
  auto g = GenerateGridRoad(40, 40, 1103);
  ASSERT_TRUE(g.ok());
  FragmentedGraph fg_old = testing::MakeFragments(*g, "grid2d", 4);
  GrapeEngine<SsspApp> before(fg_old, SsspApp{});
  ASSERT_TRUE(before.Run(SsspQuery{0}).ok());
  uint64_t full_updates = TotalUpdates(before.metrics());

  // A mild shortcut near the far corner (small affected region).
  VertexId far_corner = 40 * 40 - 1;
  std::vector<Edge> inserted = {{far_corner - 2, far_corner, 0.5, 0},
                                {far_corner, far_corner - 2, 0.5, 0}};
  Graph updated = WithInsertedEdges(*g, inserted);
  FragmentedGraph fg_new = testing::MakeFragments(updated, "grid2d", 4);
  GrapeEngine<SsspApp> after(fg_new, SsspApp{});
  auto out = after.RunIncremental(
      SsspQuery{0}, before, {far_corner - 2, far_corner});
  ASSERT_TRUE(out.ok());
  std::vector<double> expected = SeqDijkstra(updated, 0);
  for (VertexId v = 0; v < updated.num_vertices(); ++v) {
    EXPECT_DOUBLE_EQ(out->dist[v], expected[v]);
  }
  // |ΔO| for a tiny local change is orders below the initial evaluation.
  EXPECT_LT(TotalUpdates(after.metrics()), full_updates / 10 + 10);
  EXPECT_LE(after.metrics().supersteps, before.metrics().supersteps + 1);
}

TEST(IncrementalTest, NoChangeConvergesImmediately) {
  auto g = GenerateGridRoad(20, 20, 1109);
  ASSERT_TRUE(g.ok());
  FragmentedGraph fg = testing::MakeFragments(*g, "hash", 4);
  GrapeEngine<SsspApp> before(fg, SsspApp{});
  ASSERT_TRUE(before.Run(SsspQuery{0}).ok());

  // "Update" that changes nothing: re-inserting an existing edge weight.
  GrapeEngine<SsspApp> after(fg, SsspApp{});
  auto out = after.RunIncremental(SsspQuery{0}, before, {0});
  ASSERT_TRUE(out.ok());
  EXPECT_LE(after.metrics().supersteps, 2u);
  std::vector<double> expected = SeqDijkstra(*g, 0);
  for (VertexId v = 0; v < g->num_vertices(); ++v) {
    EXPECT_DOUBLE_EQ(out->dist[v], expected[v]);
  }
}

TEST(IncrementalTest, CcAfterComponentMerge) {
  // Two islands; an inserted bridge merges them. Incremental CC must
  // relabel only the island with the larger minimum.
  GraphBuilder builder(false);
  auto a = GenerateRandomTree(40, 1117, false);
  ASSERT_TRUE(a.ok());
  for (const Edge& e : a->ToEdgeList()) builder.AddEdge(e);
  auto b = GenerateRandomTree(30, 1123, false);
  ASSERT_TRUE(b.ok());
  for (const Edge& e : b->ToEdgeList()) {
    builder.AddEdge(e.src + 40, e.dst + 40, e.weight);
  }
  auto g = std::move(builder).Build();
  ASSERT_TRUE(g.ok());

  FragmentedGraph fg_old = testing::MakeFragments(*g, "hash", 3);
  GrapeEngine<CcApp> before(fg_old, CcApp{});
  auto before_out = before.Run(CcQuery{});
  ASSERT_TRUE(before_out.ok());
  EXPECT_EQ(before_out->label[45], 40u);  // second island's min id

  std::vector<Edge> bridge = {{10, 55, 1.0, 0}};
  Graph updated = WithInsertedEdges(*g, bridge);
  FragmentedGraph fg_new = testing::MakeFragments(updated, "hash", 3);
  GrapeEngine<CcApp> after(fg_new, CcApp{});
  auto out = after.RunIncremental(CcQuery{}, before, {10, 55});
  ASSERT_TRUE(out.ok());
  std::vector<VertexId> expected = SeqConnectedComponents(updated);
  for (VertexId v = 0; v < updated.num_vertices(); ++v) {
    EXPECT_EQ(out->label[v], expected[v]) << "vertex " << v;
  }
  EXPECT_EQ(out->label[55], 0u);
}

}  // namespace
}  // namespace grape
