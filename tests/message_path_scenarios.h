#ifndef GRAPE_TESTS_MESSAGE_PATH_SCENARIOS_H_
#define GRAPE_TESTS_MESSAGE_PATH_SCENARIOS_H_

// Deterministic engine scenarios whose communication counters and outputs
// are frozen as golden values (tests/message_path_golden_test.cc). The
// dense zero-hash message path must reproduce the seed path's observable
// behaviour bit for bit: same messages, same bytes, same superstep count,
// same output bits. The golden numbers were captured from the seed
// (hash-map) message path at commit ec95ff1 by running these exact
// scenarios; any routing refactor that changes them is a semantic change,
// not an optimization.

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "apps/cc.h"
#include "apps/pagerank.h"
#include "apps/register_apps.h"
#include "apps/sssp.h"
#include "core/engine.h"
#include "graph/generators.h"
#include "partition/fragment.h"
#include "partition/partitioner.h"
#include "rt/transport.h"

namespace grape {
namespace testing {

/// What a scenario run exposes for golden comparison.
struct MessagePathObservation {
  uint64_t messages = 0;
  uint64_t bytes = 0;
  uint32_t supersteps = 0;
  /// FNV-1a over the raw little-endian bytes of the assembled output —
  /// "byte-identical results" in one number.
  uint64_t output_hash = 0;
};

inline uint64_t Fnv1a(const void* data, size_t n, uint64_t h) {
  const auto* p = static_cast<const uint8_t*>(data);
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

template <typename T>
uint64_t HashVector(const std::vector<T>& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  return Fnv1a(v.data(), v.size() * sizeof(T), 0xcbf29ce484222325ULL);
}

inline FragmentedGraph ScenarioFragments(const Graph& g,
                                         const std::string& strategy,
                                         FragmentId workers) {
  auto partitioner = MakePartitioner(strategy);
  auto assignment = (*partitioner)->Partition(g, workers);
  auto fg = FragmentBuilder::Build(g, *assignment, workers);
  return std::move(fg).value();
}

inline Graph ScenarioGraph(const std::string& kind) {
  if (kind == "grid") {
    auto g = GenerateGridRoad(32, 32, 7);
    return std::move(g).value();
  }
  if (kind == "rmat") {
    RMatOptions opts;
    opts.scale = 8;
    opts.edge_factor = 6;
    opts.seed = 71;
    auto g = GenerateRMat(opts);
    return std::move(g).value();
  }
  // "er": undirected Erdos-Renyi for CC.
  auto g = GenerateErdosRenyi(300, 900, /*directed=*/false, 73);
  return std::move(g).value();
}

/// app is one of "sssp", "cc", "pagerank"; transport is a MakeTransport
/// backend name ("inproc" reproduces the engine's historical private
/// CommWorld; "socket" runs the same scenario over forked endpoint
/// processes — observables must not change). compute is "local" (PEval /
/// IncEval inline in this process, the historical mode) or "remote" (the
/// phases execute inside each rank's worker host — endpoint processes on
/// socket/tcp, in-thread workers on inproc — and only messages, acks and
/// partials come back; observables must not change either).
/// compute_threads > 1 selects the frontier-parallel PEval/IncEval
/// variants (EngineOptions::compute_threads) — observables must not
/// change at ANY thread count (tests/parallel_compute_test.cc).
inline MessagePathObservation RunMessagePathScenario(
    const std::string& app, const std::string& graph_kind,
    const std::string& strategy, FragmentId workers,
    const std::string& transport = "inproc",
    const std::string& compute = "local", uint32_t compute_threads = 0) {
  Graph g = ScenarioGraph(graph_kind);
  FragmentedGraph fg = ScenarioFragments(g, strategy, workers);
  if (compute == "remote") {
    // Endpoint processes snapshot the worker registry when the transport
    // forks them — populate it first.
    RegisterBuiltinWorkerApps();
  }
  auto world = MakeTransport(transport, workers + 1);
  GRAPE_CHECK(world.ok()) << world.status();
  EngineOptions options;
  options.transport = world->get();
  options.compute_threads = compute_threads;
  if (compute == "remote") options.remote_app = app;
  MessagePathObservation obs;
  if (app == "sssp") {
    GrapeEngine<SsspApp> engine(fg, SsspApp{}, options);
    auto out = engine.Run(SsspQuery{3});
    obs.output_hash = HashVector(out->dist);
    obs.messages = engine.metrics().messages;
    obs.bytes = engine.metrics().bytes;
    obs.supersteps = engine.metrics().supersteps;
  } else if (app == "cc") {
    GrapeEngine<CcApp> engine(fg, CcApp{}, options);
    auto out = engine.Run(CcQuery{});
    obs.output_hash = HashVector(out->label);
    obs.messages = engine.metrics().messages;
    obs.bytes = engine.metrics().bytes;
    obs.supersteps = engine.metrics().supersteps;
  } else {
    GrapeEngine<PageRankApp> engine(fg, PageRankApp{}, options);
    PageRankQuery query;
    query.max_iterations = 30;
    auto out = engine.Run(query);
    obs.output_hash = HashVector(out->rank);
    obs.messages = engine.metrics().messages;
    obs.bytes = engine.metrics().bytes;
    obs.supersteps = engine.metrics().supersteps;
  }
  return obs;
}

/// The frozen scenario matrix: SSSP/CC/PageRank across hash and METIS
/// partitions (the issue's coverage floor), plus a many-worker SSSP run.
struct MessagePathScenario {
  const char* name;
  const char* app;
  const char* graph;
  const char* strategy;
  FragmentId workers;
};

inline const std::vector<MessagePathScenario>& AllMessagePathScenarios() {
  static const std::vector<MessagePathScenario> kScenarios = {
      {"sssp_grid_hash4", "sssp", "grid", "hash", 4},
      {"sssp_grid_metis4", "sssp", "grid", "metis", 4},
      {"sssp_rmat_hash5", "sssp", "rmat", "hash", 5},
      {"sssp_rmat_metis7", "sssp", "rmat", "metis", 7},
      {"cc_er_hash6", "cc", "er", "hash", 6},
      {"cc_er_metis6", "cc", "er", "metis", 6},
      {"pagerank_rmat_hash4", "pagerank", "rmat", "hash", 4},
      {"pagerank_rmat_metis5", "pagerank", "rmat", "metis", 5},
  };
  return kScenarios;
}

}  // namespace testing
}  // namespace grape

#endif  // GRAPE_TESTS_MESSAGE_PATH_SCENARIOS_H_
