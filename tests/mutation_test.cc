// Streaming graph updates (graph/mutation.h + the engine's mutation API):
//
//  1. Mutation semantics at the Graph level — RemoveEdge, upsert inserts,
//     delete-all-matches, validation, wire round-trip.
//  2. Fragment-level rebuilds — MutateFragmentedGraph produces fragments
//     byte-identical to a from-scratch FragmentBuilder::Build over the
//     mutated graph, routing plan included.
//  3. The local differential oracle — the MutationBatch overload of
//     RunIncremental matches a full run, and the enforced monotonicity
//     contract routes deletion batches through the full-run fallback.
//  4. The remote differential gate — SessionRun + ApplyMutations +
//     RunIncremental answers bit-identical to a from-scratch recompute
//     after EVERY batch, for {sssp, cc} x {inproc, socket, tcp} x
//     {coordinator-loaded, distributed-loaded}, with a deletion batch
//     that must trip the enforced fallback on every cell.

#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "apps/cc.h"
#include "apps/register_apps.h"
#include "apps/sssp.h"
#include "core/engine.h"
#include "graph/generators.h"
#include "graph/io.h"
#include "graph/mutation.h"
#include "gtest/gtest.h"
#include "partition/fragment.h"
#include "rt/distributed_load.h"
#include "rt/remote_worker.h"
#include "tests/test_util.h"

namespace grape {
namespace {

using testing::MakeFragments;

template <typename T>
bool BitEq(const std::vector<T>& a, const std::vector<T>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(T)) == 0);
}

std::vector<uint8_t> FragmentBytes(const Fragment& frag) {
  Encoder enc;
  frag.EncodeTo(enc);
  return enc.TakeBuffer();
}

// --------------------------------------------------------- graph semantics

TEST(MutationTest, RemoveEdgeIsAddEdgesInverse) {
  GraphBuilder b(/*directed=*/false);
  b.AddEdge(0, 1, 1.0);
  b.AddEdge(1, 2, 1.0);
  b.AddEdge(2, 3, 1.0);
  // Undirected: either orientation names the edge.
  EXPECT_EQ(b.RemoveEdge(2, 1), 1u);
  EXPECT_EQ(b.RemoveEdge(2, 1), 0u);  // already gone
  auto g = std::move(b).Build();
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_edges(), 4u);  // two undirected edges, stored twice

  GraphBuilder d(/*directed=*/true);
  d.AddEdge(0, 1, 1.0);
  d.AddEdge(1, 0, 1.0);
  // Directed: orientation matters, the reverse arc survives.
  EXPECT_EQ(d.RemoveEdge(0, 1), 1u);
  auto gd = std::move(d).Build();
  ASSERT_TRUE(gd.ok());
  EXPECT_EQ(gd->num_edges(), 1u);
}

TEST(MutationTest, InsertIsUpsertAndDeleteRemovesAllMatches) {
  GraphBuilder b(/*directed=*/true);
  b.AddEdge(0, 1, 1.0, 7);
  b.AddEdge(1, 2, 2.0);
  auto g = std::move(b).Build(4);
  ASSERT_TRUE(g.ok());

  MutationBatch m;
  m.InsertEdge(0, 1, 5.0, 9);  // existing edge: weight+label replaced
  m.InsertEdge(2, 3, 0.5);     // genuinely new
  m.DeleteEdge(1, 2);
  ASSERT_OK_AND_ASSIGN(Graph updated, ApplyMutations(*g, m));

  EXPECT_EQ(updated.num_vertices(), 4u);
  std::vector<Edge> edges = updated.ToEdgeList();
  ASSERT_EQ(edges.size(), 2u);
  bool saw01 = false, saw23 = false;
  for (const Edge& e : edges) {
    if (e.src == 0 && e.dst == 1) {
      saw01 = true;
      EXPECT_DOUBLE_EQ(e.weight, 5.0);
      EXPECT_EQ(e.label, 9u);
    }
    if (e.src == 2 && e.dst == 3) saw23 = true;
  }
  EXPECT_TRUE(saw01);
  EXPECT_TRUE(saw23);
}

TEST(MutationTest, ValidateRejectsMalformedOps) {
  MutationBatch loop;
  loop.InsertEdge(2, 2, 1.0);
  EXPECT_TRUE(loop.Validate(10).IsInvalidArgument());

  MutationBatch range;
  range.DeleteEdge(0, 999);
  EXPECT_TRUE(range.Validate(10).IsInvalidArgument());

  // The vertex universe is fixed per epoch: endpoints must already exist.
  MutationBatch grow;
  grow.InsertEdge(0, 10, 1.0);
  EXPECT_TRUE(grow.Validate(10).IsInvalidArgument());
  EXPECT_TRUE(grow.Validate(11).ok());
}

TEST(MutationTest, BatchWireRoundTrip) {
  MutationBatch m;
  m.InsertEdge(1, 2, 3.5, 4);
  m.DeleteEdge(5, 6);
  m.InsertEdge(7, 8, 0.25);
  EXPECT_TRUE(m.has_deletions());
  EXPECT_EQ(m.TouchedVertices(),
            (std::vector<VertexId>{1, 2, 5, 6, 7, 8}));

  Encoder enc;
  m.EncodeTo(enc);
  Decoder dec(enc.buffer());
  MutationBatch back;
  ASSERT_OK(MutationBatch::DecodeFrom(dec, &back));
  ASSERT_EQ(back.size(), m.size());
  for (size_t i = 0; i < m.size(); ++i) {
    EXPECT_EQ(back.ops[i].op, m.ops[i].op);
    EXPECT_EQ(back.ops[i].edge.src, m.ops[i].edge.src);
    EXPECT_EQ(back.ops[i].edge.dst, m.ops[i].edge.dst);
    EXPECT_DOUBLE_EQ(back.ops[i].edge.weight, m.ops[i].edge.weight);
    EXPECT_EQ(back.ops[i].edge.label, m.ops[i].edge.label);
  }
}

// ------------------------------------------------------- fragment rebuilds

// The in-place fragment rebuild must be indistinguishable — topology,
// labels, border flags, the complete routing plan — from partitioning the
// mutated graph from scratch with the same assignment.
TEST(MutationTest, MutatedFragmentsBitIdenticalToRebuild) {
  auto g = GenerateGridRoad(10, 10, 4242);
  ASSERT_TRUE(g.ok());
  FragmentedGraph fg = MakeFragments(*g, "hash", 3);

  MutationBatch m;
  m.InsertEdge(4, 87, 0.5);
  m.InsertEdge(87, 4, 0.5);
  m.DeleteEdge(0, 1);  // an existing grid segment's forward arc
  ASSERT_OK(FragmentBuilder::MutateFragmentedGraph(&fg, m));

  ASSERT_OK_AND_ASSIGN(Graph updated, ApplyMutations(*g, m));
  FragmentedGraph ref = MakeFragments(updated, "hash", 3);
  ASSERT_EQ(fg.num_fragments(), ref.num_fragments());
  for (FragmentId i = 0; i < fg.num_fragments(); ++i) {
    EXPECT_EQ(FragmentBytes(fg.fragments[i]), FragmentBytes(ref.fragments[i]))
        << "fragment " << i;
  }
}

// ---------------------------------------------------- local oracle (batch)

TEST(MutationTest, LocalBatchOverloadMatchesFullRun) {
  auto g = GenerateGridRoad(20, 20, 909);
  ASSERT_TRUE(g.ok());
  FragmentedGraph fg_old = MakeFragments(*g, "hash", 4);
  GrapeEngine<SsspApp> before(fg_old, SsspApp{});
  ASSERT_TRUE(before.Run(SsspQuery{0}).ok());

  MutationBatch m;
  m.InsertEdge(5, 390, 0.5);
  m.InsertEdge(390, 5, 0.5);
  ASSERT_OK_AND_ASSIGN(Graph updated, ApplyMutations(*g, m));
  FragmentedGraph fg_new = MakeFragments(updated, "hash", 4);

  GrapeEngine<SsspApp> after(fg_new, SsspApp{});
  auto inc = after.RunIncremental(SsspQuery{0}, before, m);
  ASSERT_TRUE(inc.ok()) << inc.status();
  EXPECT_FALSE(after.metrics().incremental_fallback);

  GrapeEngine<SsspApp> ref(fg_new, SsspApp{});
  auto full = ref.Run(SsspQuery{0});
  ASSERT_TRUE(full.ok());
  EXPECT_TRUE(BitEq(inc->dist, full->dist));
}

// A deletion under the min order cannot ride a warm start: the enforced
// contract must answer through the full-run fallback — and flag it —
// rather than return a silently stale (too-small) distance.
TEST(MutationTest, LocalDeletionBatchTakesEnforcedFallback) {
  auto g = GenerateGridRoad(15, 15, 911);
  ASSERT_TRUE(g.ok());
  FragmentedGraph fg_old = MakeFragments(*g, "hash", 4);
  GrapeEngine<SsspApp> before(fg_old, SsspApp{});
  ASSERT_TRUE(before.Run(SsspQuery{0}).ok());

  MutationBatch m;
  m.DeleteEdge(0, 1);
  m.DeleteEdge(1, 0);
  ASSERT_OK_AND_ASSIGN(Graph updated, ApplyMutations(*g, m));
  FragmentedGraph fg_new = MakeFragments(updated, "hash", 4);

  GrapeEngine<SsspApp> after(fg_new, SsspApp{});
  auto inc = after.RunIncremental(SsspQuery{0}, before, m);
  ASSERT_TRUE(inc.ok()) << inc.status();
  EXPECT_TRUE(after.metrics().incremental_fallback)
      << "a deletion batch warm-started anyway";

  GrapeEngine<SsspApp> ref(fg_new, SsspApp{});
  auto full = ref.Run(SsspQuery{0});
  ASSERT_TRUE(full.ok());
  EXPECT_TRUE(BitEq(inc->dist, full->dist));
}

// ------------------------------------------------- remote differential gate

struct RemoteGateCase {
  std::string transport;
  std::string app;       // "sssp" | "cc"
  bool distributed;      // worker-built fragments vs coordinator-shipped
};

std::string CaseName(const ::testing::TestParamInfo<RemoteGateCase>& info) {
  return info.param.app + "_" + info.param.transport +
         (info.param.distributed ? "_distributed" : "_coordinator");
}

std::vector<RemoteGateCase> AllRemoteGateCases() {
  std::vector<RemoteGateCase> cases;
  for (const char* t : {"inproc", "socket", "tcp"}) {
    for (const char* a : {"sssp", "cc"}) {
      for (bool d : {false, true}) {
        cases.push_back(RemoteGateCase{t, a, d});
      }
    }
  }
  return cases;
}

/// The three-batch stream every cell replays: two stacked insert-only
/// batches (bounded deltas), then a deletion batch that must trip the
/// enforced fallback.
std::vector<MutationBatch> GateBatches() {
  std::vector<MutationBatch> batches(3);
  batches[0].InsertEdge(3, 140, 0.25);
  batches[0].InsertEdge(140, 3, 0.25);
  batches[1].InsertEdge(60, 100, 0.125);
  batches[1].InsertEdge(100, 60, 0.125);
  batches[2].DeleteEdge(3, 140);
  batches[2].DeleteEdge(140, 3);
  return batches;
}

template <typename App, typename Query, typename GetVec>
void RunRemoteGate(const RemoteGateCase& c, const Query& query, GetVec get) {
  RegisterBuiltinWorkerApps();
  auto g0 = GenerateGridRoad(12, 12, 77);
  ASSERT_TRUE(g0.ok());
  Graph graph = std::move(*g0);

  auto world = MakeTransport(c.transport, 4);
  ASSERT_TRUE(world.ok()) << world.status();
  EngineOptions eo;
  eo.transport = world->get();
  eo.remote_app = c.app;

  std::optional<GrapeEngine<App>> engine;
  FragmentedGraph fg;
  DistributedGraphMeta meta;
  std::string path;
  if (c.distributed) {
    path = ::testing::TempDir() + "/grape_mut_" + c.app + "_" + c.transport +
           "_" + std::to_string(getpid()) + ".txt";
    ASSERT_OK(SaveEdgeListFile(graph, path));
    DistributedLoadOptions opt;
    opt.path = path;
    opt.format.directed = graph.is_directed();
    opt.format.has_weight = true;
    opt.format.has_label = true;
    ASSERT_OK_AND_ASSIGN(meta, DistributedLoad(world->get(), opt));
    eo.load_mode = "distributed";
    engine.emplace(meta, eo);
  } else {
    fg = MakeFragments(graph, "hash", 3);
    engine.emplace(fg, App{}, eo);
  }

  auto base = engine->SessionRun(query);
  ASSERT_TRUE(base.ok()) << base.status();

  // Graph is move-only: regenerate the reference copy (same seed).
  auto current_r = GenerateGridRoad(12, 12, 77);
  ASSERT_TRUE(current_r.ok());
  Graph current = std::move(*current_r);
  const std::vector<MutationBatch> batches = GateBatches();
  for (size_t bi = 0; bi < batches.size(); ++bi) {
    const MutationBatch& m = batches[bi];
    if (!c.distributed) {
      // Coordinator placement keeps rank 0's fragments in lockstep, the
      // way the serving layer does, so a later cold load cannot roll the
      // endpoints back.
      ASSERT_OK(FragmentBuilder::MutateFragmentedGraph(&fg, m));
    }
    ASSERT_OK(engine->ApplyMutations(m).status());
    auto inc = engine->RunIncremental(query, m);
    ASSERT_TRUE(inc.ok()) << "batch " << bi << ": " << inc.status();
    EXPECT_EQ(engine->metrics().incremental_fallback, m.has_deletions())
        << "batch " << bi;

    // The differential gate: bit-identical to a from-scratch recompute
    // of the mutated graph.
    ASSERT_OK_AND_ASSIGN(current, ApplyMutations(current, m));
    FragmentedGraph ref_fg = MakeFragments(current, "hash", 3);
    GrapeEngine<App> ref(ref_fg, App{});
    auto full = ref.Run(query);
    ASSERT_TRUE(full.ok()) << full.status();
    EXPECT_TRUE(BitEq(get(*inc), get(*full))) << "batch " << bi;
  }
  engine->EndSession();
  if (!path.empty()) {
    ResidentFragmentStore::Global().Erase(meta.token);
    std::remove(path.c_str());
  }
}

class MutationRemoteGateTest
    : public ::testing::TestWithParam<RemoteGateCase> {};

TEST_P(MutationRemoteGateTest, IncrementalBitIdenticalToRecompute) {
  const RemoteGateCase& c = GetParam();
  if (c.app == "sssp") {
    RunRemoteGate<SsspApp>(c, SsspQuery{0},
                           [](const SsspOutput& o) { return o.dist; });
  } else {
    RunRemoteGate<CcApp>(c, CcQuery{},
                         [](const CcOutput& o) { return o.label; });
  }
}

INSTANTIATE_TEST_SUITE_P(Matrix, MutationRemoteGateTest,
                         ::testing::ValuesIn(AllRemoteGateCases()), CaseName);

// Guard-rail: the mutation API stays session-scoped — using it without a
// live session is an error, not a crash or a silent local mutation.
TEST(MutationTest, ApplyMutationsRequiresLiveSession) {
  RegisterBuiltinWorkerApps();
  auto g = GenerateGridRoad(6, 6, 5);
  ASSERT_TRUE(g.ok());
  FragmentedGraph fg = MakeFragments(*g, "hash", 3);
  auto world = MakeTransport("inproc", 4);
  ASSERT_TRUE(world.ok());
  EngineOptions eo;
  eo.transport = world->get();
  eo.remote_app = "sssp";
  GrapeEngine<SsspApp> engine(fg, SsspApp{}, eo);
  MutationBatch m;
  m.InsertEdge(0, 35, 1.0);
  EXPECT_TRUE(engine.ApplyMutations(m).status().IsFailedPrecondition());

  GrapeEngine<SsspApp> local(fg, SsspApp{});
  EXPECT_TRUE(local.ApplyMutations(m).status().IsInvalidArgument());
}

}  // namespace
}  // namespace grape
