// Experiment E2 — the Fig. 1 fixed-point workflow made visible: per-
// superstep message volume and changed-parameter counts for PEval followed
// by IncEval rounds. Expected shape: a large first wave from partial
// evaluation, then geometrically decaying incremental work until the
// simultaneous fixed point — the mechanism behind GRAPE's low traffic.
//
// Flags: --rows/--cols (road), --scale (RMAT), --workers,
//        --json <path> (one summary row per traced run).

#include "apps/cc.h"
#include "apps/seq/seq_algorithms.h"
#include "bench/bench_util.h"
#include "util/flags.h"

namespace grape {
namespace bench {
namespace {

VertexId BusiestVertex(const Graph& g) {
  VertexId best = 0;
  for (VertexId v = 1; v < g.num_vertices(); ++v) {
    if (g.OutDegree(v) > g.OutDegree(best)) best = v;
  }
  return best;
}

template <typename App, typename Query>
void Trace(const Graph& g, const std::string& title, const Query& query,
           FragmentId workers, const std::string& strategy,
           const std::string& label, Report* report) {
  PrintHeader(title);
  FragmentedGraph fg = Fragmentize(g, strategy, workers);
  GrapeEngine<App> engine(fg, App{});
  auto out = engine.Run(query);
  GRAPE_CHECK(out.ok()) << out.status();

  std::printf("%6s %10s %12s %12s %12s\n", "Round", "Phase", "Messages",
              "Bytes", "ParamUpd");
  const auto& rounds = engine.metrics().rounds;
  for (size_t i = 0; i < rounds.size(); ++i) {
    std::printf("%6u %10s %12s %12s %12s\n", rounds[i].round,
                i == 0 ? "PEval" : "IncEval",
                HumanCount(rounds[i].messages).c_str(),
                HumanBytes(rounds[i].bytes).c_str(),
                HumanCount(rounds[i].updated_params).c_str());
  }
  std::printf("fixed point after %u supersteps, total %s shipped\n",
              engine.metrics().supersteps,
              HumanBytes(engine.metrics().bytes).c_str());

  report->Add(MetricsRow(label, "fixed-point trace (" + strategy + ")",
                         engine.metrics()));
}

int Run(int argc, char** argv) {
  FlagParser flags;
  GRAPE_CHECK(flags.Parse(argc, argv).ok());
  const auto rows = static_cast<uint32_t>(flags.GetInt("rows", 150));
  const auto cols = static_cast<uint32_t>(flags.GetInt("cols", 150));
  const auto workers = static_cast<FragmentId>(flags.GetInt("workers", 8));
  RMatOptions ropts;
  ropts.scale = static_cast<uint32_t>(flags.GetInt("scale", 14));
  ropts.edge_factor = 10;
  ropts.seed = 201;

  auto road = GenerateGridRoad(rows, cols, 202);
  GRAPE_CHECK(road.ok());
  auto rmat = GenerateRMat(ropts);
  GRAPE_CHECK(rmat.ok());

  Report report("fixed_point");
  Trace<SsspApp>(*road, "Fixed point trace: SSSP on road network",
                 SsspQuery{0}, workers, "grid2d", "SSSP/road", &report);
  Trace<SsspApp>(*rmat, "Fixed point trace: SSSP on power-law graph",
                 SsspQuery{BusiestVertex(*rmat)}, workers, "metis",
                 "SSSP/power-law", &report);
  Trace<CcApp>(*rmat, "Fixed point trace: CC on power-law graph", CcQuery{},
               workers, "hash", "CC/power-law", &report);
  MaybeWriteJson(flags, report);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace grape

int main(int argc, char** argv) { return grape::bench::Run(argc, argv); }
