// Experiment E7 — the Fig. 4 / Example 2 social-media-marketing demo:
// evaluate the GPAR "if >= 80% of x's followees recommend the item and none
// rates it badly, then x is a potential customer" over a Weibo-like social
// graph, report the top candidates ranked by confidence, and verify the
// paper's claim that "the more workers are used, the faster it finds
// potential customers".
//
// Flags: --persons --items --max_workers --support,
//        --json <path> (strong- and weak-scaling rows).

#include "apps/gpar.h"
#include "bench/bench_util.h"
#include "util/flags.h"

namespace grape {
namespace bench {
namespace {

int Run(int argc, char** argv) {
  FlagParser flags;
  GRAPE_CHECK(flags.Parse(argc, argv).ok());
  SocialGraphOptions opts;
  opts.num_persons =
      static_cast<VertexId>(flags.GetInt("persons", 120000));
  opts.num_items = static_cast<VertexId>(flags.GetInt("items", 30));
  opts.seed = 4242;
  const auto max_workers =
      static_cast<FragmentId>(flags.GetInt("max_workers", 8));

  auto g = GenerateSocialGraph(opts);
  GRAPE_CHECK(g.ok()) << g.status();

  GparQuery query;
  query.item = opts.num_persons;  // gid of item 0 ("Huawei Mate 9")
  query.support = flags.GetDouble("support", 0.8);
  query.min_followees = 3;

  PrintHeader("GPAR social media marketing on " +
              std::to_string(opts.num_persons) + " persons (support >= " +
              std::to_string(query.support) + ", no bad rating)");

  Report report("gpar");
  std::printf("%8s %10s %12s %8s %12s\n", "Workers", "Time(s)", "Comm",
              "Steps", "Candidates");
  double t1 = 0;
  size_t candidate_count = 0;
  GparOutput last;
  for (FragmentId n = 1; n <= max_workers; n *= 2) {
    FragmentedGraph fg = Fragmentize(*g, "hash", n);
    GrapeEngine<GparApp> engine(fg, GparApp{});
    auto out = engine.Run(query);
    GRAPE_CHECK(out.ok()) << out.status();
    if (n == 1) {
      t1 = engine.metrics().total_seconds;
      candidate_count = out->candidates.size();
    }
    GRAPE_CHECK(out->candidates.size() == candidate_count)
        << "answer must not depend on the worker count";
    std::printf("%8u %10.3f %12s %8u %12zu   (speedup %4.2fx)\n", n,
                engine.metrics().total_seconds,
                HumanBytes(engine.metrics().bytes).c_str(),
                engine.metrics().supersteps, out->candidates.size(),
                t1 / engine.metrics().total_seconds);
    report.Add(MetricsRow("GRAPE workers=" + std::to_string(n),
                          "gpar strong scaling", engine.metrics()));
    last = std::move(*out);
  }

  std::printf("\nTop potential customers (Fig. 4 result panel):\n");
  std::printf("%12s %12s %12s %14s\n", "Person", "Confidence", "Followees",
              "Recommending");
  for (size_t i = 0; i < std::min<size_t>(8, last.candidates.size()); ++i) {
    const GparCandidate& c = last.candidates[i];
    std::printf("%12u %12.3f %12u %14u\n", c.person, c.confidence,
                c.followees, c.recommending);
  }

  // Weak scaling: the per-person evaluation cost is tiny at in-process
  // latencies, so the "more workers => faster" guarantee shows up as the
  // ability to absorb proportionally more data per added worker ("scale-up"
  // in the paper's terms). Time per million persons should stay roughly
  // flat as persons and workers grow together.
  PrintHeader("GPAR weak scaling: persons grow with workers");
  std::printf("%8s %10s %10s %12s %16s\n", "Workers", "Persons", "Time(s)",
              "Comm", "s per 1M persons");
  for (FragmentId n = 1; n <= max_workers; n *= 2) {
    SocialGraphOptions wopts = opts;
    wopts.num_persons = 100000u * n;
    wopts.seed = 4242 + n;
    auto wg = GenerateSocialGraph(wopts);
    GRAPE_CHECK(wg.ok());
    GparQuery wq = query;
    wq.item = wopts.num_persons;
    FragmentedGraph fg = Fragmentize(*wg, "hash", n);
    GrapeEngine<GparApp> engine(fg, GparApp{});
    auto out = engine.Run(wq);
    GRAPE_CHECK(out.ok());
    std::printf("%8u %10u %10.3f %12s %16.3f\n", n, wopts.num_persons,
                engine.metrics().total_seconds,
                HumanBytes(engine.metrics().bytes).c_str(),
                engine.metrics().total_seconds * 1e6 / wopts.num_persons);
    report.Add(MetricsRow("GRAPE workers=" + std::to_string(n) +
                              " persons=" + std::to_string(wopts.num_persons),
                          "gpar weak scaling", engine.metrics()));
  }
  MaybeWriteJson(flags, report);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace grape

int main(int argc, char** argv) { return grape::bench::Run(argc, argv); }
