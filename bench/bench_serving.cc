// Serving benchmark — the grape_serve daemon path: one resident graph,
// concurrent clients firing SSSP point queries at the admission loop.
// Reports client-observed p50/p99 latency and sustained queries/sec,
// once with the batching window closed (every query is its own wave)
// and once open (compatible queries fuse into multi-source waves), so
// the JSON shows what admission fusion buys on the same workload.
//
// A third section streams edge-mutation batches into the resident graph
// and re-answers incrementally (kTagSvMutate), against the cost of a full
// reload + recompute — the "time per mutation batch vs full reload" row.
//
// Flags: --workers --scale --clients --queries (per client)
//        --batch-window-ms --mutation-batches --json <path>.

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "apps/register_apps.h"
#include "bench/bench_util.h"
#include "graph/io.h"
#include "rt/distributed_load.h"
#include "serve/client.h"
#include "serve/serve.h"
#include "util/timer.h"

namespace grape {
namespace bench {
namespace {

struct ServingRun {
  double p50_s = 0;
  double p99_s = 0;
  double qps = 0;
  uint64_t queries = 0;
  uint64_t waves = 0;
};

double Percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) return 0;
  const size_t idx = static_cast<size_t>(p * (sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

/// `clients` threads each issue `queries` SSSP requests back to back;
/// the batching window is what turns their overlap into fused waves.
ServingRun RunClients(uint16_t port, uint32_t clients, uint32_t queries,
                      VertexId num_vertices) {
  std::vector<std::vector<double>> lat(clients);
  std::vector<std::thread> threads;
  threads.reserve(clients);
  WallTimer wall;
  for (uint32_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      auto client = ServeClient::Connect(port);
      GRAPE_CHECK(client.ok()) << client.status();
      lat[c].reserve(queries);
      for (uint32_t q = 0; q < queries; ++q) {
        const VertexId source = (c * 2654435761u + q * 40503u) % num_vertices;
        WallTimer t;
        auto dist = client->Sssp(source);
        GRAPE_CHECK(dist.ok()) << dist.status();
        GRAPE_CHECK(dist->size() == num_vertices);
        lat[c].push_back(t.ElapsedSeconds());
      }
    });
  }
  for (auto& t : threads) t.join();
  const double total_s = wall.ElapsedSeconds();

  std::vector<double> all;
  for (auto& v : lat) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  ServingRun run;
  run.p50_s = Percentile(all, 0.50);
  run.p99_s = Percentile(all, 0.99);
  run.queries = all.size();
  run.qps = total_s > 0 ? static_cast<double>(all.size()) / total_s : 0;
  return run;
}

void AddRows(const std::string& system, const ServingRun& run,
             Report* report) {
  auto add = [&](const std::string& category, double value) {
    ReportRow row;
    row.system = system;
    row.category = category;
    row.time_s = value;
    row.rounds = static_cast<uint32_t>(run.waves);
    row.messages = run.queries;
    report->Add(row);
  };
  add("p50_latency_s", run.p50_s);
  add("p99_latency_s", run.p99_s);
  add("queries_per_sec", run.qps);
}

int Run(int argc, char** argv) {
  FlagParser flags;
  GRAPE_CHECK(flags.Parse(argc, argv).ok());
  const auto workers = static_cast<FragmentId>(flags.GetInt("workers", 4));
  const auto scale = static_cast<uint32_t>(flags.GetInt("scale", 12));
  const auto clients = static_cast<uint32_t>(flags.GetInt("clients", 8));
  const auto queries = static_cast<uint32_t>(flags.GetInt("queries", 24));
  const int window_ms = flags.GetInt("batch-window-ms", 4);
  RegisterBuiltinWorkerApps();
  Report report("serving");

  RMatOptions gopts;
  gopts.scale = scale;
  gopts.edge_factor = 8;
  gopts.seed = 7;
  auto graph = GenerateRMat(gopts);
  GRAPE_CHECK(graph.ok()) << graph.status();
  const VertexId num_vertices = graph->num_vertices();

  // No InThreadWorkers here: each engine session spawns its own set for
  // inproc worlds; a second set would race it for the same mailboxes.
  auto world = MakeTransport("inproc", workers + 1);
  GRAPE_CHECK(world.ok()) << world.status();

  PrintHeader("Serving (" + std::to_string(workers) + " workers, " +
              std::to_string(clients) + " clients x " +
              std::to_string(queries) + " SSSP queries, 2^" +
              std::to_string(scale) + " vertices)");
  std::printf("%-22s %12s %12s %12s %8s\n", "Mode", "p50(ms)", "p99(ms)",
              "queries/s", "Waves");

  // Two servers, same world: batching off, then on. Each Shutdown()
  // retires its sessions before the next Start() reuses the endpoints.
  for (const bool batched : {false, true}) {
    ServeOptions opts;
    opts.transport = world->get();
    opts.num_fragments = workers;
    opts.load_coordinator = [&]() -> Result<FragmentedGraph> {
      return Fragmentize(*graph, "hash", workers);
    };
    opts.batch_window_ms = batched ? window_ms : 0;
    opts.max_batch = clients;
    ServeServer server(opts);
    Status started = server.Start();
    GRAPE_CHECK(started.ok()) << started;

    ServingRun run = RunClients(server.port(), clients, queries, num_vertices);
    run.waves = server.stats().waves;
    server.Shutdown();

    const std::string mode = batched ? "batched" : "unbatched";
    std::printf("%-22s %12.3f %12.3f %12.1f %8llu\n", mode.c_str(),
                run.p50_s * 1e3, run.p99_s * 1e3, run.qps,
                static_cast<unsigned long long>(run.waves));
    AddRows("grape_serve/" + mode, run, &report);
  }

  // Incremental section: the cost of keeping a standing answer current.
  // The standing query is CC (computed once, then served from cache). A
  // mutation batch applies in place to the resident fragments and
  // refreshes the cached answer with a bounded IncEval delta riding the
  // warm session; the read after it is a cache hit. The alternative — a
  // full reload — re-runs the whole loading pipeline and pays a cold
  // session plus the full fixed point to get the same answer back. Each
  // side is timed through to the refreshed read. Distributed loading is
  // the serving configuration this is for (rank 0 never holds the
  // graph, so a mutation touches no coordinator-side copy either).
  {
    const auto batches =
        static_cast<uint32_t>(flags.GetInt("mutation-batches", 8));
    const uint32_t ops_per_batch = 8;
    const std::string path =
        "/tmp/grape_bench_serving_" + std::to_string(getpid()) + ".txt";
    Status saved = SaveEdgeListFile(*graph, path);
    GRAPE_CHECK(saved.ok()) << saved;
    ServeOptions opts;
    opts.transport = world->get();
    opts.num_fragments = workers;
    opts.load_distributed =
        [path](Transport* w) -> Result<DistributedGraphMeta> {
      DistributedLoadOptions dopt;
      dopt.path = path;
      dopt.format.directed = true;
      dopt.format.has_weight = true;
      dopt.format.has_label = true;
      return DistributedLoad(w, dopt);
    };
    opts.batch_window_ms = 0;
    ServeServer server(opts);
    Status started = server.Start();
    GRAPE_CHECK(started.ok()) << started;
    auto client = ServeClient::Connect(server.port());
    GRAPE_CHECK(client.ok()) << client.status();
    auto prime = client->ComponentLabels();  // standing query: warm CC
    GRAPE_CHECK(prime.ok()) << prime.status();

    WallTimer mt;
    for (uint32_t b = 0; b < batches; ++b) {
      MutationBatch m;
      for (uint32_t i = 0; i < ops_per_batch; ++i) {
        const VertexId src =
            (b * 2654435761u + i * 40503u + 13u) % num_vertices;
        const VertexId dst =
            (src + 1u + (b * 97u + i * 131u) % (num_vertices - 1)) %
            num_vertices;
        m.InsertEdge(src, dst, 0.5);
      }
      auto version = client->Mutate(m);
      GRAPE_CHECK(version.ok()) << version.status();
      auto answer = client->ComponentLabels();  // delta-refreshed cache hit
      GRAPE_CHECK(answer.ok()) << answer.status();
    }
    const double per_batch_s = mt.ElapsedSeconds() / batches;
    const uint64_t delta_refreshes = server.stats().delta_refreshes;
    GRAPE_CHECK(delta_refreshes == batches)
        << "a mutation batch missed the bounded delta path: "
        << delta_refreshes << "/" << batches;

    WallTimer rt;
    auto epoch = client->Reload();
    GRAPE_CHECK(epoch.ok()) << epoch.status();
    auto cold = client->ComponentLabels();  // full recompute
    GRAPE_CHECK(cold.ok()) << cold.status();
    const double reload_s = rt.ElapsedSeconds();
    server.Shutdown();
    std::remove(path.c_str());

    std::printf("%-22s %12.3f %12s %12s %8llu\n", "mutation_batch",
                per_batch_s * 1e3, "-", "-",
                static_cast<unsigned long long>(delta_refreshes));
    std::printf("%-22s %12.3f %12s %12s %8s\n", "full_reload",
                reload_s * 1e3, "-", "-", "-");
    ReportRow inc;
    inc.system = "grape_serve/incremental";
    inc.category = "mutation_batch_s";
    inc.time_s = per_batch_s;
    inc.messages = batches * ops_per_batch;
    report.Add(inc);
    ReportRow full;
    full.system = "grape_serve/incremental";
    full.category = "full_reload_s";
    full.time_s = reload_s;
    report.Add(full);
  }

  MaybeWriteJson(flags, report);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace grape

int main(int argc, char** argv) { return grape::bench::Run(argc, argv); }
