// Serving benchmark — the grape_serve daemon path: one resident graph,
// concurrent clients firing SSSP point queries at the admission loop.
// Reports client-observed p50/p99 latency and sustained queries/sec,
// once with the batching window closed (every query is its own wave)
// and once open (compatible queries fuse into multi-source waves), so
// the JSON shows what admission fusion buys on the same workload.
//
// Flags: --workers --scale --clients --queries (per client)
//        --batch-window-ms --json <path>.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "apps/register_apps.h"
#include "bench/bench_util.h"
#include "serve/client.h"
#include "serve/serve.h"
#include "util/timer.h"

namespace grape {
namespace bench {
namespace {

struct ServingRun {
  double p50_s = 0;
  double p99_s = 0;
  double qps = 0;
  uint64_t queries = 0;
  uint64_t waves = 0;
};

double Percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) return 0;
  const size_t idx = static_cast<size_t>(p * (sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

/// `clients` threads each issue `queries` SSSP requests back to back;
/// the batching window is what turns their overlap into fused waves.
ServingRun RunClients(uint16_t port, uint32_t clients, uint32_t queries,
                      VertexId num_vertices) {
  std::vector<std::vector<double>> lat(clients);
  std::vector<std::thread> threads;
  threads.reserve(clients);
  WallTimer wall;
  for (uint32_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      auto client = ServeClient::Connect(port);
      GRAPE_CHECK(client.ok()) << client.status();
      lat[c].reserve(queries);
      for (uint32_t q = 0; q < queries; ++q) {
        const VertexId source = (c * 2654435761u + q * 40503u) % num_vertices;
        WallTimer t;
        auto dist = client->Sssp(source);
        GRAPE_CHECK(dist.ok()) << dist.status();
        GRAPE_CHECK(dist->size() == num_vertices);
        lat[c].push_back(t.ElapsedSeconds());
      }
    });
  }
  for (auto& t : threads) t.join();
  const double total_s = wall.ElapsedSeconds();

  std::vector<double> all;
  for (auto& v : lat) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  ServingRun run;
  run.p50_s = Percentile(all, 0.50);
  run.p99_s = Percentile(all, 0.99);
  run.queries = all.size();
  run.qps = total_s > 0 ? static_cast<double>(all.size()) / total_s : 0;
  return run;
}

void AddRows(const std::string& system, const ServingRun& run,
             Report* report) {
  auto add = [&](const std::string& category, double value) {
    ReportRow row;
    row.system = system;
    row.category = category;
    row.time_s = value;
    row.rounds = static_cast<uint32_t>(run.waves);
    row.messages = run.queries;
    report->Add(row);
  };
  add("p50_latency_s", run.p50_s);
  add("p99_latency_s", run.p99_s);
  add("queries_per_sec", run.qps);
}

int Run(int argc, char** argv) {
  FlagParser flags;
  GRAPE_CHECK(flags.Parse(argc, argv).ok());
  const auto workers = static_cast<FragmentId>(flags.GetInt("workers", 4));
  const auto scale = static_cast<uint32_t>(flags.GetInt("scale", 12));
  const auto clients = static_cast<uint32_t>(flags.GetInt("clients", 8));
  const auto queries = static_cast<uint32_t>(flags.GetInt("queries", 24));
  const int window_ms = flags.GetInt("batch-window-ms", 4);
  RegisterBuiltinWorkerApps();
  Report report("serving");

  RMatOptions gopts;
  gopts.scale = scale;
  gopts.edge_factor = 8;
  gopts.seed = 7;
  auto graph = GenerateRMat(gopts);
  GRAPE_CHECK(graph.ok()) << graph.status();
  const VertexId num_vertices = graph->num_vertices();

  // No InThreadWorkers here: each engine session spawns its own set for
  // inproc worlds; a second set would race it for the same mailboxes.
  auto world = MakeTransport("inproc", workers + 1);
  GRAPE_CHECK(world.ok()) << world.status();

  PrintHeader("Serving (" + std::to_string(workers) + " workers, " +
              std::to_string(clients) + " clients x " +
              std::to_string(queries) + " SSSP queries, 2^" +
              std::to_string(scale) + " vertices)");
  std::printf("%-22s %12s %12s %12s %8s\n", "Mode", "p50(ms)", "p99(ms)",
              "queries/s", "Waves");

  // Two servers, same world: batching off, then on. Each Shutdown()
  // retires its sessions before the next Start() reuses the endpoints.
  for (const bool batched : {false, true}) {
    ServeOptions opts;
    opts.transport = world->get();
    opts.num_fragments = workers;
    opts.load_coordinator = [&]() -> Result<FragmentedGraph> {
      return Fragmentize(*graph, "hash", workers);
    };
    opts.batch_window_ms = batched ? window_ms : 0;
    opts.max_batch = clients;
    ServeServer server(opts);
    Status started = server.Start();
    GRAPE_CHECK(started.ok()) << started;

    ServingRun run = RunClients(server.port(), clients, queries, num_vertices);
    run.waves = server.stats().waves;
    server.Shutdown();

    const std::string mode = batched ? "batched" : "unbatched";
    std::printf("%-22s %12.3f %12.3f %12.1f %8llu\n", mode.c_str(),
                run.p50_s * 1e3, run.p99_s * 1e3, run.qps,
                static_cast<unsigned long long>(run.waves));
    AddRows("grape_serve/" + mode, run, &report);
  }

  MaybeWriteJson(flags, report);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace grape

int main(int argc, char** argv) { return grape::bench::Run(argc, argv); }
