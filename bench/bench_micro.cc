// Experiment E8 — google-benchmark microbenchmarks for the substrate: the
// serializer that carries every message, the partition strategies, fragment
// construction, a full small engine run (per-superstep overhead), and the
// message-path shape comparison (seed hash-map shape vs. dense zero-hash
// shape) for the engine's flush / coordinator-route / apply hot loops.

#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "apps/sssp.h"
#include "core/aggregators.h"
#include "core/codec.h"
#include "core/engine.h"
#include "graph/generators.h"
#include "partition/fragment.h"
#include "partition/partitioner.h"
#include "rt/transport.h"
#include "util/logging.h"
#include "util/serializer.h"

namespace grape {
namespace {

void BM_EncoderVarint(benchmark::State& state) {
  Encoder enc;
  for (auto _ : state) {
    enc.Clear();
    for (uint64_t i = 0; i < 1024; ++i) enc.WriteVarint(i * 2654435761u);
    benchmark::DoNotOptimize(enc.buffer().data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(enc.size()));
}
BENCHMARK(BM_EncoderVarint);

void BM_DecoderVarint(benchmark::State& state) {
  Encoder enc;
  for (uint64_t i = 0; i < 1024; ++i) enc.WriteVarint(i * 2654435761u);
  for (auto _ : state) {
    Decoder dec(enc.buffer());
    uint64_t v = 0;
    for (int i = 0; i < 1024; ++i) {
      benchmark::DoNotOptimize(dec.ReadVarint(&v));
    }
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(enc.size()));
}
BENCHMARK(BM_DecoderVarint);

void BM_ParamUpdateRoundTrip(benchmark::State& state) {
  // The exact wire format of an engine flush batch.
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Encoder enc;
    enc.WriteU32(0);
    enc.WriteVarint(n);
    for (int i = 0; i < n; ++i) {
      enc.WriteU32(static_cast<uint32_t>(i));
      enc.WritePod(static_cast<double>(i) * 0.5);
    }
    Decoder dec(enc.buffer());
    uint32_t dst = 0;
    uint64_t count = 0;
    benchmark::DoNotOptimize(dec.ReadU32(&dst));
    benchmark::DoNotOptimize(dec.ReadVarint(&count));
    for (uint64_t i = 0; i < count; ++i) {
      uint32_t gid = 0;
      double value = 0;
      benchmark::DoNotOptimize(dec.ReadU32(&gid));
      benchmark::DoNotOptimize(dec.ReadPod(&value));
    }
  }
}
BENCHMARK(BM_ParamUpdateRoundTrip)->Arg(128)->Arg(4096);

void BM_Partitioner(benchmark::State& state, const std::string& name) {
  RMatOptions opts;
  opts.scale = 13;
  opts.edge_factor = 8;
  opts.seed = 5;
  auto g = GenerateRMat(opts);
  for (auto _ : state) {
    auto partitioner = MakePartitioner(name);
    auto assignment = (*partitioner)->Partition(*g, 8);
    benchmark::DoNotOptimize(assignment);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          g->num_vertices());
}
BENCHMARK_CAPTURE(BM_Partitioner, hash, "hash");
BENCHMARK_CAPTURE(BM_Partitioner, ldg, "ldg");
BENCHMARK_CAPTURE(BM_Partitioner, metis, "metis");

void BM_FragmentBuild(benchmark::State& state) {
  RMatOptions opts;
  opts.scale = 13;
  opts.edge_factor = 8;
  opts.seed = 5;
  auto g = GenerateRMat(opts);
  auto partitioner = MakePartitioner("hash");
  auto assignment = (*partitioner)->Partition(*g, 8);
  for (auto _ : state) {
    auto fg = FragmentBuilder::Build(*g, *assignment, 8);
    benchmark::DoNotOptimize(fg);
  }
}
BENCHMARK(BM_FragmentBuild);

// ---------------------------------------------------------------------------
// Message-path shape comparison. Each pair runs the same logical work — the
// engine's per-superstep flush, coordinator aggregation, or update
// application — once in the seed's shape (unordered_map grouping, gid on
// the wire, Lid() hash at the receiver, fresh buffers every round) and once
// in the dense shape the engine now uses (precomputed dst_lid routing
// plans, flat per-destination staging reused across rounds, epoch-tagged
// slot arrays, pooled buffers). The dense/seed time ratio is the headline
// number this refactor claims (>= 1.5x on each of the three loops).
// ---------------------------------------------------------------------------

/// Shared fixture: a hash-partitioned RMat graph and the flush workload of
/// one fragment (all its outer vertices changed, as in an SSSP wavefront).
struct MessagePathFixture {
  FragmentedGraph fg;
  const Fragment* frag = nullptr;       // flushing fragment
  std::vector<LocalId> changed;         // its outer lids
  std::vector<double> values;           // by local id

  static const MessagePathFixture& Get() {
    static MessagePathFixture* fixture = [] {
      auto* f = new MessagePathFixture();
      RMatOptions opts;
      opts.scale = 12;
      opts.edge_factor = 8;
      opts.seed = 5;
      auto g = GenerateRMat(opts);
      auto partitioner = MakePartitioner("hash");
      auto assignment = (*partitioner)->Partition(*g, 8);
      f->fg = std::move(FragmentBuilder::Build(*g, *assignment, 8)).value();
      f->frag = &f->fg.fragments[0];
      for (LocalId lid = f->frag->num_inner(); lid < f->frag->num_local();
           ++lid) {
        f->changed.push_back(lid);
      }
      f->values.resize(f->frag->num_local());
      for (LocalId lid = 0; lid < f->frag->num_local(); ++lid) {
        f->values[lid] = static_cast<double>(lid) * 0.25 + 1.0;
      }
      return f;
    }();
    return *fixture;
  }
};

void BM_FlushSeedShape(benchmark::State& state) {
  const auto& fx = MessagePathFixture::Get();
  const Fragment& frag = *fx.frag;
  size_t bytes = 0;
  for (auto _ : state) {
    // Seed shape: group through a hash map, encode (gid, value) records
    // into freshly allocated buffers.
    struct Outgoing {
      VertexId gid;
      const double* value;
    };
    std::unordered_map<FragmentId, std::vector<Outgoing>> by_dst;
    for (LocalId lid : fx.changed) {
      const VertexId gid = frag.Gid(lid);
      by_dst[frag.OwnerOf(gid)].push_back({gid, &fx.values[lid]});
    }
    std::vector<FragmentId> dsts;
    dsts.reserve(by_dst.size());
    for (const auto& [dst, outgoing] : by_dst) dsts.push_back(dst);
    std::sort(dsts.begin(), dsts.end());
    bytes = 0;
    for (FragmentId dst : dsts) {
      Encoder enc;
      enc.WriteU32(dst);
      enc.WriteVarint(by_dst[dst].size());
      for (const Outgoing& o : by_dst[dst]) {
        enc.WriteU32(o.gid);
        enc.WritePod(*o.value);
      }
      std::vector<uint8_t> payload = enc.TakeBuffer();
      benchmark::DoNotOptimize(payload.data());
      bytes += payload.size();
    }
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(bytes));
}
BENCHMARK(BM_FlushSeedShape);

void BM_FlushDenseShape(benchmark::State& state) {
  const auto& fx = MessagePathFixture::Get();
  const Fragment& frag = *fx.frag;
  // Persistent state, as held by the engine across supersteps.
  std::vector<RecordBlock<double>> staging(fx.fg.num_fragments());
  std::vector<FragmentId> dsts;
  BufferPool pool;
  size_t bytes = 0;
  for (auto _ : state) {
    for (LocalId lid : fx.changed) {
      RecordBlock<double>& block = staging[frag.OuterOwner(lid)];
      if (block.empty()) dsts.push_back(frag.OuterOwner(lid));
      block.Append(frag.OuterOwnerLid(lid), fx.values[lid]);
    }
    std::sort(dsts.begin(), dsts.end());
    bytes = 0;
    for (FragmentId dst : dsts) {
      Encoder enc(pool.Acquire());
      enc.WriteU32(dst);
      EncodeRecordBlock(enc, staging[dst]);
      std::vector<uint8_t> payload = enc.TakeBuffer();
      benchmark::DoNotOptimize(payload.data());
      bytes += payload.size();
      pool.Release(std::move(payload));
      staging[dst].clear();
    }
    dsts.clear();
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(bytes));
}
BENCHMARK(BM_FlushDenseShape);

/// Builds the coordinator's inbox for the route benchmarks: `senders`
/// buffers of `per_sender` updates each, all bound for fragment 0, with
/// heavy overlap so aggregation actually merges. Seed wire carries gids,
/// dense wire carries dst_lids.
struct RouteWorkload {
  std::vector<std::vector<uint8_t>> seed_payloads;
  std::vector<std::vector<uint8_t>> dense_payloads;
  const Fragment* dst;

  static const RouteWorkload& Get() {
    static RouteWorkload* w = [] {
      auto* r = new RouteWorkload();
      const auto& fx = MessagePathFixture::Get();
      r->dst = &fx.fg.fragments[0];
      const LocalId ni = r->dst->num_inner();
      const int senders = 7;
      const int per_sender = 2048;
      uint64_t state = 0x9e3779b97f4a7c15ULL;
      for (int s = 0; s < senders; ++s) {
        Encoder seed_enc;
        Encoder dense_enc;
        seed_enc.WriteU32(0);
        seed_enc.WriteVarint(per_sender);
        dense_enc.WriteU32(0);
        RecordBlock<double> block;
        for (int k = 0; k < per_sender; ++k) {
          state = state * 6364136223846793005ULL + 1442695040888963407ULL;
          LocalId lid = static_cast<LocalId>((state >> 33) % ni);
          double value = static_cast<double>(state >> 40) * 0.5;
          seed_enc.WriteU32(r->dst->Gid(lid));
          seed_enc.WritePod(value);
          block.Append(lid, value);
        }
        EncodeRecordBlock(dense_enc, block);
        r->seed_payloads.push_back(seed_enc.TakeBuffer());
        r->dense_payloads.push_back(dense_enc.TakeBuffer());
      }
      return r;
    }();
    return *w;
  }
};

void BM_CoordinatorRouteSeedShape(benchmark::State& state) {
  const auto& w = RouteWorkload::Get();
  uint64_t routed = 0;
  for (auto _ : state) {
    // Seed shape: per-(destination, gid) unordered_map built from scratch.
    struct DstBatch {
      std::vector<ParamUpdate<double>> updates;
      std::unordered_map<VertexId, size_t> index;
    };
    std::unordered_map<FragmentId, DstBatch> batches;
    for (const auto& payload : w.seed_payloads) {
      Decoder dec(payload);
      uint32_t dst = 0;
      uint64_t count = 0;
      (void)dec.ReadU32(&dst);
      (void)dec.ReadVarint(&count);
      DstBatch& batch = batches[dst];
      for (uint64_t k = 0; k < count; ++k) {
        VertexId gid = 0;
        double value = 0;
        (void)dec.ReadU32(&gid);
        (void)dec.ReadPod(&value);
        auto [it, inserted] =
            batch.index.try_emplace(gid, batch.updates.size());
        if (inserted) {
          batch.updates.push_back(ParamUpdate<double>{gid, value});
        } else {
          MinAggregator<double>::Aggregate(batch.updates[it->second].value,
                                           value);
        }
      }
    }
    routed = batches[0].updates.size();
    benchmark::DoNotOptimize(routed);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(w.seed_payloads.size()) *
                          2048);
}
BENCHMARK(BM_CoordinatorRouteSeedShape);

void BM_CoordinatorRouteDenseShape(benchmark::State& state) {
  const auto& w = RouteWorkload::Get();
  // Persistent coordinator state, as held by the engine.
  std::vector<uint32_t> slot_round(w.dst->num_local(), 0);
  std::vector<uint32_t> slot_pos(w.dst->num_local());
  std::vector<uint32_t> lids;
  std::vector<double> values;
  std::vector<uint32_t> scratch_lids;
  std::vector<double> scratch_values;
  uint32_t round = 0;
  uint64_t routed = 0;
  for (auto _ : state) {
    ++round;
    lids.clear();
    values.clear();
    for (const auto& payload : w.dense_payloads) {
      Decoder dec(payload);
      uint32_t dst = 0;
      (void)dec.ReadU32(&dst);
      (void)DecodeRecordBlock(dec, &scratch_lids, &scratch_values);
      for (size_t k = 0; k < scratch_lids.size(); ++k) {
        const LocalId lid = scratch_lids[k];
        if (slot_round[lid] != round) {
          slot_round[lid] = round;
          slot_pos[lid] = static_cast<uint32_t>(lids.size());
          lids.push_back(lid);
          values.push_back(scratch_values[k]);
        } else {
          MinAggregator<double>::Aggregate(values[slot_pos[lid]],
                                           scratch_values[k]);
        }
      }
    }
    routed = lids.size();
    benchmark::DoNotOptimize(routed);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(w.dense_payloads.size()) *
                          2048);
}
BENCHMARK(BM_CoordinatorRouteDenseShape);

void BM_ApplySeedShape(benchmark::State& state) {
  const auto& w = RouteWorkload::Get();
  const Fragment& frag = *w.dst;
  std::vector<double> store(frag.num_local(), 1e300);
  std::vector<LocalId> updated;
  for (auto _ : state) {
    updated.clear();
    for (const auto& payload : w.seed_payloads) {
      Decoder dec(payload);
      uint32_t dst = 0;
      uint64_t count = 0;
      (void)dec.ReadU32(&dst);
      (void)dec.ReadVarint(&count);
      for (uint64_t k = 0; k < count; ++k) {
        VertexId gid = 0;
        double value = 0;
        (void)dec.ReadU32(&gid);
        (void)dec.ReadPod(&value);
        LocalId lid = frag.Lid(gid);  // the hash the dense path removes
        if (MinAggregator<double>::Aggregate(store[lid], value)) {
          updated.push_back(lid);
        }
      }
    }
    benchmark::DoNotOptimize(updated.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(w.seed_payloads.size()) *
                          2048);
}
BENCHMARK(BM_ApplySeedShape);

void BM_ApplyDenseShape(benchmark::State& state) {
  const auto& w = RouteWorkload::Get();
  const Fragment& frag = *w.dst;
  std::vector<double> store(frag.num_local(), 1e300);
  std::vector<LocalId> updated;
  std::vector<uint32_t> lids;
  std::vector<double> values;
  for (auto _ : state) {
    updated.clear();
    for (const auto& payload : w.dense_payloads) {
      Decoder dec(payload);
      uint32_t dst = 0;
      (void)dec.ReadU32(&dst);
      (void)DecodeRecordBlock(dec, &lids, &values);
      for (size_t k = 0; k < lids.size(); ++k) {
        if (MinAggregator<double>::Aggregate(store[lids[k]], values[k])) {
          updated.push_back(lids[k]);
        }
      }
    }
    benchmark::DoNotOptimize(updated.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(w.seed_payloads.size()) *
                          2048);
}
BENCHMARK(BM_ApplyDenseShape);

// Transport substrate pair: one superstep-shaped exchange — a batch of
// Sends, the Flush delivery barrier, then a drain — on each backend. The
// inproc row is the mailbox-move floor; the socket row adds two process
// hops (sender -> endpoint child -> receiver thread) per message, so the
// pair prices the multi-process substrate per superstep.
void BM_TransportSendRecv(benchmark::State& state,
                          const std::string& backend) {
  auto t = MakeTransport(backend, 2);
  GRAPE_CHECK(t.ok()) << t.status();
  Transport& world = **t;
  const size_t payload_bytes = static_cast<size_t>(state.range(0));
  const int kBatch = 16;  // messages per barrier, a typical flush fan-out
  for (auto _ : state) {
    for (int k = 0; k < kBatch; ++k) {
      std::vector<uint8_t> buf = world.buffer_pool().Acquire();
      buf.clear();
      buf.resize(payload_bytes, static_cast<uint8_t>(k));
      benchmark::DoNotOptimize(
          world.Send(0, 1, kTagParamUpdate, std::move(buf)));
    }
    benchmark::DoNotOptimize(world.Flush());
    int received = 0;
    while (auto msg = world.TryRecv(1)) {
      ++received;
      world.buffer_pool().Release(std::move(msg->payload));
    }
    if (received != kBatch) state.SkipWithError("lost messages");
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * kBatch *
                          static_cast<int64_t>(payload_bytes));
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * kBatch);
}
BENCHMARK_CAPTURE(BM_TransportSendRecv, inproc, "inproc")
    ->Arg(256)
    ->Arg(65536);
BENCHMARK_CAPTURE(BM_TransportSendRecv, socket, "socket")
    ->Arg(256)
    ->Arg(65536);
BENCHMARK_CAPTURE(BM_TransportSendRecv, tcp, "tcp")
    ->Arg(256)
    ->Arg(65536);

void BM_GrapeSsspEndToEnd(benchmark::State& state) {
  auto g = GenerateGridRoad(64, 64, 6);
  auto partitioner = MakePartitioner("grid2d");
  auto assignment = (*partitioner)->Partition(*g, 4);
  auto fg = FragmentBuilder::Build(*g, *assignment, 4);
  for (auto _ : state) {
    GrapeEngine<SsspApp> engine(*fg, SsspApp{});
    auto out = engine.Run(SsspQuery{0});
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_GrapeSsspEndToEnd);

}  // namespace
}  // namespace grape

// Custom main instead of BENCHMARK_MAIN so this bench honors the repo-wide
// `--json <path>` convention: it is rewritten into google-benchmark's
// native --benchmark_out=<path>/--benchmark_out_format=json pair.
int main(int argc, char** argv) {
  std::vector<std::string> args;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string path;
    if (arg == "--json" && i + 1 < argc &&
        std::string(argv[i + 1]).rfind("--", 0) != 0) {
      path = argv[++i];
    } else if (arg.rfind("--json=", 0) == 0) {
      path = arg.substr(7);
    }
    if (path.empty()) {
      args.push_back(arg);
    } else {
      args.push_back("--benchmark_out=" + path);
      args.push_back("--benchmark_out_format=json");
    }
  }
  std::vector<char*> argv2;
  argv2.reserve(args.size());
  for (std::string& a : args) argv2.push_back(a.data());
  int argc2 = static_cast<int>(argv2.size());
  benchmark::Initialize(&argc2, argv2.data());
  if (benchmark::ReportUnrecognizedArguments(argc2, argv2.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
