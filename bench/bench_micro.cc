// Experiment E8 — google-benchmark microbenchmarks for the substrate: the
// serializer that carries every message, the partition strategies, fragment
// construction, and a full small engine run (per-superstep overhead).

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "apps/sssp.h"
#include "core/engine.h"
#include "graph/generators.h"
#include "partition/fragment.h"
#include "partition/partitioner.h"
#include "util/serializer.h"

namespace grape {
namespace {

void BM_EncoderVarint(benchmark::State& state) {
  Encoder enc;
  for (auto _ : state) {
    enc.Clear();
    for (uint64_t i = 0; i < 1024; ++i) enc.WriteVarint(i * 2654435761u);
    benchmark::DoNotOptimize(enc.buffer().data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(enc.size()));
}
BENCHMARK(BM_EncoderVarint);

void BM_DecoderVarint(benchmark::State& state) {
  Encoder enc;
  for (uint64_t i = 0; i < 1024; ++i) enc.WriteVarint(i * 2654435761u);
  for (auto _ : state) {
    Decoder dec(enc.buffer());
    uint64_t v = 0;
    for (int i = 0; i < 1024; ++i) {
      benchmark::DoNotOptimize(dec.ReadVarint(&v));
    }
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(enc.size()));
}
BENCHMARK(BM_DecoderVarint);

void BM_ParamUpdateRoundTrip(benchmark::State& state) {
  // The exact wire format of an engine flush batch.
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Encoder enc;
    enc.WriteU32(0);
    enc.WriteVarint(n);
    for (int i = 0; i < n; ++i) {
      enc.WriteU32(static_cast<uint32_t>(i));
      enc.WritePod(static_cast<double>(i) * 0.5);
    }
    Decoder dec(enc.buffer());
    uint32_t dst = 0;
    uint64_t count = 0;
    benchmark::DoNotOptimize(dec.ReadU32(&dst));
    benchmark::DoNotOptimize(dec.ReadVarint(&count));
    for (uint64_t i = 0; i < count; ++i) {
      uint32_t gid = 0;
      double value = 0;
      benchmark::DoNotOptimize(dec.ReadU32(&gid));
      benchmark::DoNotOptimize(dec.ReadPod(&value));
    }
  }
}
BENCHMARK(BM_ParamUpdateRoundTrip)->Arg(128)->Arg(4096);

void BM_Partitioner(benchmark::State& state, const std::string& name) {
  RMatOptions opts;
  opts.scale = 13;
  opts.edge_factor = 8;
  opts.seed = 5;
  auto g = GenerateRMat(opts);
  for (auto _ : state) {
    auto partitioner = MakePartitioner(name);
    auto assignment = (*partitioner)->Partition(*g, 8);
    benchmark::DoNotOptimize(assignment);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          g->num_vertices());
}
BENCHMARK_CAPTURE(BM_Partitioner, hash, "hash");
BENCHMARK_CAPTURE(BM_Partitioner, ldg, "ldg");
BENCHMARK_CAPTURE(BM_Partitioner, metis, "metis");

void BM_FragmentBuild(benchmark::State& state) {
  RMatOptions opts;
  opts.scale = 13;
  opts.edge_factor = 8;
  opts.seed = 5;
  auto g = GenerateRMat(opts);
  auto partitioner = MakePartitioner("hash");
  auto assignment = (*partitioner)->Partition(*g, 8);
  for (auto _ : state) {
    auto fg = FragmentBuilder::Build(*g, *assignment, 8);
    benchmark::DoNotOptimize(fg);
  }
}
BENCHMARK(BM_FragmentBuild);

void BM_GrapeSsspEndToEnd(benchmark::State& state) {
  auto g = GenerateGridRoad(64, 64, 6);
  auto partitioner = MakePartitioner("grid2d");
  auto assignment = (*partitioner)->Partition(*g, 4);
  auto fg = FragmentBuilder::Build(*g, *assignment, 4);
  for (auto _ : state) {
    GrapeEngine<SsspApp> engine(*fg, SsspApp{});
    auto out = engine.Run(SsspQuery{0});
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_GrapeSsspEndToEnd);

}  // namespace
}  // namespace grape

// Custom main instead of BENCHMARK_MAIN so this bench honors the repo-wide
// `--json <path>` convention: it is rewritten into google-benchmark's
// native --benchmark_out=<path>/--benchmark_out_format=json pair.
int main(int argc, char** argv) {
  std::vector<std::string> args;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string path;
    if (arg == "--json" && i + 1 < argc &&
        std::string(argv[i + 1]).rfind("--", 0) != 0) {
      path = argv[++i];
    } else if (arg.rfind("--json=", 0) == 0) {
      path = arg.substr(7);
    }
    if (path.empty()) {
      args.push_back(arg);
    } else {
      args.push_back("--benchmark_out=" + path);
      args.push_back("--benchmark_out_format=json");
    }
  }
  std::vector<char*> argv2;
  argv2.reserve(args.size());
  for (std::string& a : args) argv2.push_back(a.data());
  int argc2 = static_cast<int>(argv2.size());
  benchmark::Initialize(&argc2, argv2.data());
  if (benchmark::ReportUnrecognizedArguments(argc2, argv2.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
