// Experiment E6 — the boundedness claim of Sec. 2.2(2): IncEval's cost is a
// function of |M_i| + |ΔO_i| (changes in and out), not of |F_i|. Two probes:
//
// (a) Ablation: the same SSSP query with bounded IncEval vs. the engine's
//     full-re-evaluation mode (every round re-evaluates whole fragments, the
//     Blogel-style discipline). Expected shape: IncEval time grows much more
//     slowly with graph size than recompute time.
//
// (b) Per-round scaling: on one large graph, per-round IncEval time tracks
//     the round's update count, not the (constant) fragment size.
//
// Flags: --workers, --json <path> (IncEval-vs-recompute rows).

#include "apps/seq/seq_algorithms.h"
#include "bench/bench_util.h"
#include "util/flags.h"

namespace grape {
namespace bench {
namespace {

int Run(int argc, char** argv) {
  FlagParser flags;
  GRAPE_CHECK(flags.Parse(argc, argv).ok());
  const auto workers = static_cast<FragmentId>(flags.GetInt("workers", 8));
  Report report("inceval_bounded");

  PrintHeader("IncEval boundedness (a): bounded IncEval vs full recompute");
  std::printf("%12s %14s %16s %10s\n", "Graph |V|", "IncEval(s)",
              "Recompute(s)", "Ratio");
  for (uint32_t side : {60u, 90u, 130u, 190u}) {
    auto g = GenerateGridRoad(side, side, 601 + side);
    GRAPE_CHECK(g.ok());
    std::vector<double> expected = SeqDijkstra(*g, 0);
    FragmentedGraph fg = Fragmentize(*g, "grid2d", workers);

    GrapeEngine<SsspApp> inc(fg, SsspApp{});
    auto inc_out = inc.Run(SsspQuery{0});
    GRAPE_CHECK(inc_out.ok());
    GRAPE_CHECK(SsspMatches(inc_out->dist, expected));

    EngineOptions opts;
    opts.incremental = false;
    GrapeEngine<SsspApp> full(fg, SsspApp{}, opts);
    auto full_out = full.Run(SsspQuery{0});
    GRAPE_CHECK(full_out.ok());
    GRAPE_CHECK(SsspMatches(full_out->dist, expected));

    std::printf("%12u %14.4f %16.4f %9.1fx\n", side * side,
                inc.metrics().inceval_seconds,
                full.metrics().inceval_seconds,
                full.metrics().inceval_seconds /
                    std::max(1e-9, inc.metrics().inceval_seconds));

    const std::string size_tag = " |V|=" + std::to_string(side * side);
    ReportRow inc_row =
        MetricsRow("IncEval" + size_tag, "bounded inceval", inc.metrics());
    inc_row.time_s = inc.metrics().inceval_seconds;
    report.Add(inc_row);
    ReportRow full_row = MetricsRow("Recompute" + size_tag,
                                    "full re-evaluation", full.metrics());
    full_row.time_s = full.metrics().inceval_seconds;
    report.Add(full_row);
  }

  PrintHeader(
      "IncEval boundedness (c): incremental re-answering after graph "
      "updates (Q(G+M) from Q(G))");
  {
    std::printf("%12s %16s %16s %14s %14s\n", "Graph |V|", "Full run upd",
                "Incr. upd", "Full(s)", "Incr(s)");
    for (uint32_t side : {80u, 120u, 160u}) {
      auto g = GenerateGridRoad(side, side, 701 + side);
      GRAPE_CHECK(g.ok());
      FragmentedGraph fg = Fragmentize(*g, "grid2d", workers);
      GrapeEngine<SsspApp> initial(fg, SsspApp{});
      GRAPE_CHECK(initial.Run(SsspQuery{0}).ok());
      uint64_t full_updates = 0;
      for (const RoundMetrics& r : initial.metrics().rounds) {
        full_updates += r.updated_params;
      }

      // Insert one shortcut near the far corner and re-answer.
      const VertexId corner = side * side - 1;
      GraphBuilder builder(true);
      for (const Edge& e : g->ToEdgeList()) builder.AddEdge(e);
      builder.AddEdge(corner - 3, corner, 0.5);
      builder.AddEdge(corner, corner - 3, 0.5);
      auto updated = std::move(builder).Build(g->num_vertices());
      GRAPE_CHECK(updated.ok());
      FragmentedGraph fg2 = Fragmentize(*updated, "grid2d", workers);

      GrapeEngine<SsspApp> incremental(fg2, SsspApp{});
      auto out = incremental.RunIncremental(SsspQuery{0}, initial,
                                            {corner - 3, corner});
      GRAPE_CHECK(out.ok());
      GRAPE_CHECK(SsspMatches(out->dist, SeqDijkstra(*updated, 0)));
      uint64_t incr_updates = 0;
      for (const RoundMetrics& r : incremental.metrics().rounds) {
        incr_updates += r.updated_params;
      }
      std::printf("%12u %16llu %16llu %14.4f %14.4f\n", side * side,
                  static_cast<unsigned long long>(full_updates),
                  static_cast<unsigned long long>(incr_updates),
                  initial.metrics().total_seconds,
                  incremental.metrics().total_seconds);

      ReportRow row =
          MetricsRow("Q(G+M) from Q(G) |V|=" + std::to_string(side * side),
                     "incremental re-answering", incremental.metrics());
      row.messages = incr_updates;
      report.Add(row);
    }
  }

  PrintHeader("IncEval boundedness (b): per-round cost tracks update size");
  {
    auto g = GenerateGridRoad(200, 200, 907);
    GRAPE_CHECK(g.ok());
    FragmentedGraph fg = Fragmentize(*g, "grid2d", workers);
    GrapeEngine<SsspApp> engine(fg, SsspApp{});
    auto out = engine.Run(SsspQuery{0});
    GRAPE_CHECK(out.ok());
    std::printf("fragment size is constant at ~%u vertices/worker\n",
                g->num_vertices() / workers);
    std::printf("%6s %12s %14s %18s\n", "Round", "ParamUpd", "Round(s)",
                "us per update");
    const auto& rounds = engine.metrics().rounds;
    for (size_t i = 1; i < rounds.size(); ++i) {
      if (rounds[i].updated_params == 0) continue;
      std::printf("%6u %12llu %14.5f %18.2f\n", rounds[i].round,
                  static_cast<unsigned long long>(rounds[i].updated_params),
                  rounds[i].seconds,
                  rounds[i].seconds * 1e6 /
                      static_cast<double>(rounds[i].updated_params));
    }
  }
  MaybeWriteJson(flags, report);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace grape

int main(int argc, char** argv) { return grape::bench::Run(argc, argv); }
