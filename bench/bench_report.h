#ifndef GRAPE_BENCH_BENCH_REPORT_H_
#define GRAPE_BENCH_BENCH_REPORT_H_

// Machine-readable benchmark reporting. Every bench can serialize its
// measurements as a JSON document so the perf trajectory can be tracked
// across commits (GBBS-style reproducible measurement discipline):
//
//   {
//     "bench": "table1_sssp",
//     "rows": [
//       {"system": "GRAPE", "category": "auto-parallelization",
//        "time_s": 0.0125, "comm_mb": 0.05, "rounds": 11,
//        "messages": 120, "correct": true},
//       ...
//     ]
//   }
//
// Row order is preserved: benches that reproduce a paper table emit rows
// in the table's order, so downstream tooling can check shape claims
// (e.g. Table 1: GRAPE < block-centric < vertex-centric runtime) by index.
//
// The header is deliberately free of engine/graph dependencies so tests
// and external tooling can use it standalone.

#include <cctype>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "util/result.h"
#include "util/status.h"

namespace grape {
namespace bench {

/// One measurement row of a bench report.
struct ReportRow {
  std::string system;    // what was measured ("GRAPE", "metis", ...)
  std::string category;  // execution model / experiment axis
  double time_s = 0;     // wall-clock seconds
  double comm_mb = 0;    // bytes shipped, in MiB
  uint64_t rounds = 0;   // supersteps / rounds to fixed point
  uint64_t messages = 0; // routed messages or parameter updates
  bool correct = true;   // answer matched the sequential reference

  friend bool operator==(const ReportRow& a, const ReportRow& b) {
    return a.system == b.system && a.category == b.category &&
           a.time_s == b.time_s && a.comm_mb == b.comm_mb &&
           a.rounds == b.rounds && a.messages == b.messages &&
           a.correct == b.correct;
  }
};

namespace internal {

inline void AppendJsonString(const std::string& in, std::string* out) {
  out->push_back('"');
  for (char c : in) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

inline void AppendJsonDouble(double v, std::string* out) {
  if (!std::isfinite(v)) v = 0;  // JSON has no NaN/Inf
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  *out += buf;
}

/// Minimal recursive-descent JSON reader covering the subset Report emits
/// (objects, arrays, strings, numbers, booleans, null). Unknown keys are
/// skipped so the schema can grow without breaking old consumers.
class JsonReader {
 public:
  explicit JsonReader(const std::string& text) : text_(text) {}

  Status Error(const std::string& msg) const {
    return Status::Corruption("JSON parse error at offset " +
                              std::to_string(pos_) + ": " + msg);
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  char Peek() {
    SkipSpace();
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  bool AtEnd() {
    SkipSpace();
    return pos_ >= text_.size();
  }

  Status ReadString(std::string* out) {
    if (!Consume('"')) return Error("expected string");
    out->clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return Status::OK();
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      char esc = text_[pos_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code += h - '0';
            else if (h >= 'a' && h <= 'f') code += h - 'a' + 10;
            else if (h >= 'A' && h <= 'F') code += h - 'A' + 10;
            else return Error("bad \\u escape");
          }
          // Only the control-character range Report itself emits.
          out->push_back(static_cast<char>(code & 0xff));
          break;
        }
        default:
          return Error("unknown escape");
      }
    }
    return Error("unterminated string");
  }

  Status ReadDouble(double* out) {
    SkipSpace();
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected number");
    try {
      *out = std::stod(text_.substr(start, pos_ - start));
    } catch (...) {
      return Error("malformed number");
    }
    return Status::OK();
  }

  Status ReadBool(bool* out) {
    SkipSpace();
    if (text_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      *out = true;
      return Status::OK();
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      *out = false;
      return Status::OK();
    }
    return Error("expected boolean");
  }

  /// Skips any well-formed value (for unknown keys).
  Status SkipValue() {
    char c = Peek();
    if (c == '"') {
      std::string ignored;
      return ReadString(&ignored);
    }
    if (c == '{' || c == '[') {
      const char open = c;
      const char close = (c == '{') ? '}' : ']';
      Consume(open);
      int depth = 1;
      bool in_string = false;
      while (pos_ < text_.size() && depth > 0) {
        char d = text_[pos_++];
        if (in_string) {
          if (d == '\\') ++pos_;
          else if (d == '"') in_string = false;
        } else if (d == '"') {
          in_string = true;
        } else if (d == open) {
          ++depth;
        } else if (d == close) {
          --depth;
        }
      }
      return depth == 0 ? Status::OK() : Error("unterminated value");
    }
    if (c == 't' || c == 'f') {
      bool ignored;
      return ReadBool(&ignored);
    }
    if (text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      return Status::OK();
    }
    double ignored;
    return ReadDouble(&ignored);
  }

 private:
  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace internal

/// An ordered collection of ReportRows with a bench name, serializable to
/// (and parseable back from) JSON.
class Report {
 public:
  explicit Report(std::string bench) : bench_(std::move(bench)) {}

  const std::string& bench() const { return bench_; }
  const std::vector<ReportRow>& rows() const { return rows_; }
  bool empty() const { return rows_.empty(); }

  void Add(ReportRow row) { rows_.push_back(std::move(row)); }

  std::string ToJson() const {
    std::string out;
    out += "{\n  \"bench\": ";
    internal::AppendJsonString(bench_, &out);
    out += ",\n  \"rows\": [";
    for (size_t i = 0; i < rows_.size(); ++i) {
      const ReportRow& r = rows_[i];
      out += (i == 0) ? "\n" : ",\n";
      out += "    {\"system\": ";
      internal::AppendJsonString(r.system, &out);
      out += ", \"category\": ";
      internal::AppendJsonString(r.category, &out);
      out += ", \"time_s\": ";
      internal::AppendJsonDouble(r.time_s, &out);
      out += ", \"comm_mb\": ";
      internal::AppendJsonDouble(r.comm_mb, &out);
      out += ", \"rounds\": " + std::to_string(r.rounds);
      out += ", \"messages\": " + std::to_string(r.messages);
      out += ", \"correct\": ";
      out += r.correct ? "true" : "false";
      out += "}";
    }
    out += rows_.empty() ? "]\n}\n" : "\n  ]\n}\n";
    return out;
  }

  Status WriteFile(const std::string& path) const {
    std::ofstream out(path, std::ios::trunc);
    if (!out) return Status::IOError("cannot open " + path + " for writing");
    out << ToJson();
    out.flush();
    if (!out) return Status::IOError("short write to " + path);
    return Status::OK();
  }

  /// Parses a document produced by ToJson() (unknown keys are skipped).
  static Result<Report> FromJson(const std::string& text) {
    internal::JsonReader reader(text);
    Report report("");
    if (!reader.Consume('{')) return reader.Error("expected top-level object");
    if (reader.Peek() != '}') {
      do {
        std::string key;
        Status key_status = reader.ReadString(&key);
        if (!key_status.ok()) return key_status;
        if (!reader.Consume(':')) return reader.Error("expected ':'");
        if (key == "bench") {
          Status s = reader.ReadString(&report.bench_);
          if (!s.ok()) return s;
        } else if (key == "rows") {
          Status s = ParseRows(&reader, &report.rows_);
          if (!s.ok()) return s;
        } else {
          Status s = reader.SkipValue();
          if (!s.ok()) return s;
        }
      } while (reader.Consume(','));
    }
    if (!reader.Consume('}')) return reader.Error("expected '}'");
    if (!reader.AtEnd()) return reader.Error("trailing content");
    return report;
  }

 private:
  static Status ParseRows(internal::JsonReader* reader,
                          std::vector<ReportRow>* rows) {
    if (!reader->Consume('[')) return reader->Error("expected rows array");
    if (reader->Peek() == ']') {
      reader->Consume(']');
      return Status::OK();
    }
    do {
      if (!reader->Consume('{')) return reader->Error("expected row object");
      ReportRow row;
      if (reader->Peek() != '}') {
        do {
          std::string key;
          Status s = reader->ReadString(&key);
          if (!s.ok()) return s;
          if (!reader->Consume(':')) return reader->Error("expected ':'");
          double num = 0;
          if (key == "system") {
            s = reader->ReadString(&row.system);
          } else if (key == "category") {
            s = reader->ReadString(&row.category);
          } else if (key == "time_s") {
            s = reader->ReadDouble(&row.time_s);
          } else if (key == "comm_mb") {
            s = reader->ReadDouble(&row.comm_mb);
          } else if (key == "rounds") {
            s = reader->ReadDouble(&num);
            row.rounds = static_cast<uint64_t>(num);
          } else if (key == "messages") {
            s = reader->ReadDouble(&num);
            row.messages = static_cast<uint64_t>(num);
          } else if (key == "correct") {
            s = reader->ReadBool(&row.correct);
          } else {
            s = reader->SkipValue();
          }
          if (!s.ok()) return s;
        } while (reader->Consume(','));
      }
      if (!reader->Consume('}')) return reader->Error("expected '}'");
      rows->push_back(std::move(row));
    } while (reader->Consume(','));
    if (!reader->Consume(']')) return reader->Error("expected ']'");
    return Status::OK();
  }

  std::string bench_;
  std::vector<ReportRow> rows_;
};

}  // namespace bench
}  // namespace grape

#endif  // GRAPE_BENCH_BENCH_REPORT_H_
