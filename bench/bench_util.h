#ifndef GRAPE_BENCH_BENCH_UTIL_H_
#define GRAPE_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>
#include <vector>

#include "apps/sssp.h"
#include "baseline/block_apps.h"
#include "baseline/block_engine.h"
#include "baseline/gas_apps.h"
#include "baseline/gas_engine.h"
#include "baseline/vc_apps.h"
#include "baseline/vc_engine.h"
#include "bench/bench_report.h"
#include "core/engine.h"
#include "graph/generators.h"
#include "partition/fragment.h"
#include "partition/partitioner.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace grape {
namespace bench {

/// One row of a system-comparison table.
struct SystemRow {
  std::string system;
  std::string category;
  double seconds = 0;
  uint64_t bytes = 0;
  uint64_t messages = 0;
  uint32_t supersteps = 0;
  bool correct = true;
};

inline void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void PrintSystemTable(const std::vector<SystemRow>& rows) {
  std::printf("%-22s %-22s %10s %12s %12s %10s %8s\n", "System", "Category",
              "Time(s)", "Comm", "Messages", "Supersteps", "Correct");
  for (const SystemRow& r : rows) {
    std::printf("%-22s %-22s %10.3f %12s %12s %10u %8s\n", r.system.c_str(),
                r.category.c_str(), r.seconds, HumanBytes(r.bytes).c_str(),
                HumanCount(r.messages).c_str(), r.supersteps,
                r.correct ? "yes" : "NO");
  }
}

inline ReportRow ToReportRow(const SystemRow& r) {
  ReportRow row;
  row.system = r.system;
  row.category = r.category;
  row.time_s = r.seconds;
  row.comm_mb = static_cast<double>(r.bytes) / (1024.0 * 1024.0);
  row.rounds = r.supersteps;
  row.messages = r.messages;
  row.correct = r.correct;
  return row;
}

inline void AddSystemTable(const std::vector<SystemRow>& rows,
                           Report* report) {
  for (const SystemRow& r : rows) report->Add(ToReportRow(r));
}

/// Builds a report row from an engine run; callers override fields that
/// deviate (e.g. inceval-only time, routed-update message counts).
inline ReportRow MetricsRow(const std::string& system,
                            const std::string& category,
                            const EngineMetrics& m) {
  ReportRow row;
  row.system = system;
  row.category = category;
  row.time_s = m.total_seconds;
  row.comm_mb = static_cast<double>(m.bytes) / (1024.0 * 1024.0);
  row.rounds = m.supersteps;
  row.messages = m.messages;
  return row;
}

/// Honors the bench-wide `--json <path>` flag: writes `report` there when
/// given, aborting (bench-grade handling) if the file cannot be written.
inline void MaybeWriteJson(const FlagParser& flags, const Report& report) {
  const std::string path = flags.GetString("json", "");
  if (path.empty()) return;
  // FlagParser turns a valueless `--json` into the string "true"; writing
  // a report to a file literally named "true" is never what was meant.
  GRAPE_CHECK(path != "true")
      << "--json requires a path (e.g. --json out.json)";
  Status s = report.WriteFile(path);
  GRAPE_CHECK(s.ok()) << s;
  std::printf("\nwrote JSON report (%zu rows) to %s\n", report.rows().size(),
              path.c_str());
}

/// Partitions + fragments, aborting on error (bench-grade handling).
inline FragmentedGraph Fragmentize(const Graph& g, const std::string& strategy,
                                   FragmentId n) {
  auto partitioner = MakePartitioner(strategy);
  GRAPE_CHECK(partitioner.ok()) << partitioner.status();
  auto assignment = (*partitioner)->Partition(g, n);
  GRAPE_CHECK(assignment.ok()) << assignment.status();
  auto fg = FragmentBuilder::Build(g, *assignment, n);
  GRAPE_CHECK(fg.ok()) << fg.status();
  return std::move(fg).value();
}

/// Checks an SSSP answer against the reference distances.
inline bool SsspMatches(const std::vector<double>& got,
                        const std::vector<double>& expected) {
  if (got.size() != expected.size()) return false;
  for (size_t v = 0; v < got.size(); ++v) {
    if (got[v] != expected[v]) return false;
  }
  return true;
}

/// Runs GRAPE SSSP; fills a table row. `metrics_out`, when non-null,
/// receives the full engine metrics (load/peval/... breakdown).
inline SystemRow RunGrapeSssp(const FragmentedGraph& fg, VertexId source,
                              const std::vector<double>& expected,
                              EngineOptions options = {},
                              const std::string& label = "GRAPE",
                              EngineMetrics* metrics_out = nullptr) {
  GrapeEngine<SsspApp> engine(fg, SsspApp{}, options);
  auto out = engine.Run(SsspQuery{source});
  GRAPE_CHECK(out.ok()) << out.status();
  if (metrics_out != nullptr) *metrics_out = engine.metrics();
  SystemRow row;
  row.system = label;
  row.category = "auto-parallelization";
  row.seconds = engine.metrics().total_seconds;
  row.bytes = engine.metrics().bytes;
  row.messages = engine.metrics().messages;
  row.supersteps = engine.metrics().supersteps;
  row.correct = SsspMatches(out->dist, expected);
  return row;
}

/// Runs GRAPE SSSP on fragments built in place by DistributedLoad: the
/// engine holds only `meta` and drives remote compute on the same world.
inline SystemRow RunGrapeSsspDistributed(const DistributedGraphMeta& meta,
                                         VertexId source,
                                         const std::vector<double>& expected,
                                         EngineOptions options,
                                         const std::string& label = "GRAPE",
                                         EngineMetrics* metrics_out = nullptr) {
  GrapeEngine<SsspApp> engine(meta, options);
  auto out = engine.Run(SsspQuery{source});
  GRAPE_CHECK(out.ok()) << out.status();
  if (metrics_out != nullptr) *metrics_out = engine.metrics();
  SystemRow row;
  row.system = label;
  row.category = "auto-parallelization";
  row.seconds = engine.metrics().total_seconds;
  row.bytes = engine.metrics().bytes;
  row.messages = engine.metrics().messages;
  row.supersteps = engine.metrics().supersteps;
  row.correct = SsspMatches(out->dist, expected);
  return row;
}

inline SystemRow RunVcSssp(const FragmentedGraph& fg, VertexId source,
                           const std::vector<double>& expected,
                           const std::string& label = "VertexCentric") {
  VertexCentricEngine<VcSssp> engine(fg, VcSssp{source});
  Status s = engine.Run();
  GRAPE_CHECK(s.ok()) << s;
  SystemRow row;
  row.system = label;
  row.category = "vertex-centric";
  row.seconds = engine.metrics().seconds;
  row.bytes = engine.metrics().bytes;
  row.messages = engine.metrics().vertex_messages;
  row.supersteps = engine.metrics().supersteps;
  row.correct = true;
  for (VertexId v = 0; v < expected.size(); ++v) {
    if (engine.ValueOf(v) != expected[v]) {
      row.correct = false;
      break;
    }
  }
  return row;
}

inline SystemRow RunGasSssp(const FragmentedGraph& fg, VertexId source,
                            const std::vector<double>& expected,
                            const std::string& label = "GAS") {
  GasEngine<GasSssp> engine(fg, GasSssp{source});
  Status s = engine.Run();
  GRAPE_CHECK(s.ok()) << s;
  SystemRow row;
  row.system = label;
  row.category = "vertex-centric (GAS)";
  row.seconds = engine.metrics().seconds;
  row.bytes = engine.metrics().bytes;
  row.messages = engine.metrics().ghost_updates;
  row.supersteps = engine.metrics().rounds;
  row.correct = true;
  for (VertexId v = 0; v < expected.size(); ++v) {
    if (engine.ValueOf(v) != expected[v]) {
      row.correct = false;
      break;
    }
  }
  return row;
}

inline SystemRow RunBlockSssp(const FragmentedGraph& fg, VertexId source,
                              const std::vector<double>& expected,
                              const std::string& label = "BlockCentric") {
  BlockCentricEngine<BlockSssp> engine(fg, BlockSssp{source});
  Status s = engine.Run();
  GRAPE_CHECK(s.ok()) << s;
  SystemRow row;
  row.system = label;
  row.category = "block-centric";
  row.seconds = engine.metrics().seconds;
  row.bytes = engine.metrics().bytes;
  row.messages = engine.metrics().vertex_messages;
  row.supersteps = engine.metrics().supersteps;
  row.correct = true;
  for (VertexId v = 0; v < expected.size(); ++v) {
    if (engine.ValueOf(v) != expected[v]) {
      row.correct = false;
      break;
    }
  }
  return row;
}

}  // namespace bench
}  // namespace grape

#endif  // GRAPE_BENCH_BENCH_UTIL_H_
