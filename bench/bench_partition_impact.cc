// Experiment E3 — reproduces the Sec. 3(2) partition-impact demo:
// "for SSSP, GRAPE takes 18.3 s and ships 7.5M messages with 16 nodes over
//  LiveJournal partitioned with METIS. It takes 30 s and ships 40M messages
//  with stream-based partition in the same setting due to more cross edges."
//
// We sweep partition strategies on a LiveJournal-like power-law graph and
// report time, parameter messages and cut quality. Expected shape: the
// offline multilevel partitioner ships the fewest updates and runs fastest;
// streaming (LDG) is in between; hash is worst.
//
// Flags: --scale --edge_factor --workers,
//        --json <path> (one row per partition strategy).

#include "apps/seq/seq_algorithms.h"
#include "bench/bench_util.h"
#include "partition/quality.h"
#include "util/flags.h"

namespace grape {
namespace bench {
namespace {

int Run(int argc, char** argv) {
  FlagParser flags;
  GRAPE_CHECK(flags.Parse(argc, argv).ok());
  CommunityGraphOptions opts;
  opts.num_vertices = 1u << static_cast<uint32_t>(flags.GetInt("scale", 15));
  opts.avg_degree = static_cast<uint32_t>(flags.GetInt("degree", 14));
  opts.num_communities =
      static_cast<uint32_t>(flags.GetInt("communities", 96));
  opts.intra_fraction = flags.GetDouble("intra", 0.92);
  opts.seed = 1899;
  const FragmentId workers =
      static_cast<FragmentId>(flags.GetInt("workers", 16));

  auto g = GenerateCommunityGraph(opts);
  GRAPE_CHECK(g.ok()) << g.status();
  std::vector<double> expected = SeqDijkstra(*g, 0);

  PrintHeader("Sec. 3(2): partition impact on SSSP (LiveJournal-like "
              "community graph, 2^" +
              std::to_string(flags.GetInt("scale", 15)) + " vertices, " +
              std::to_string(workers) + " workers)");
  std::printf("%-10s %10s %12s %12s %10s %10s %9s\n", "Strategy", "Time(s)",
              "ParamUpd", "Comm", "CutEdges", "Cut%", "PartTime");

  struct Row {
    std::string name;
    double seconds;
    uint64_t updates;
  };
  std::vector<Row> rows;
  Report report("partition_impact");
  for (const std::string strategy : {"metis", "ldg", "fennel", "hash"}) {
    auto partitioner = MakePartitioner(strategy);
    GRAPE_CHECK(partitioner.ok());
    WallTimer part_timer;
    auto assignment = (*partitioner)->Partition(*g, workers);
    double part_seconds = part_timer.ElapsedSeconds();
    GRAPE_CHECK(assignment.ok());
    PartitionQuality quality = EvaluatePartition(*g, *assignment, workers);
    auto fg = FragmentBuilder::Build(*g, *assignment, workers);
    GRAPE_CHECK(fg.ok());

    GrapeEngine<SsspApp> engine(*fg, SsspApp{});
    auto out = engine.Run(SsspQuery{0});
    GRAPE_CHECK(out.ok()) << out.status();
    GRAPE_CHECK(SsspMatches(out->dist, expected)) << strategy;

    // Parameter updates = per-round routed values (the paper's "messages").
    uint64_t updates = 0;
    for (const RoundMetrics& r : engine.metrics().rounds) {
      updates += r.updated_params;
    }
    std::printf("%-10s %10.3f %12s %12s %10zu %9.1f%% %8.2fs\n",
                strategy.c_str(), engine.metrics().total_seconds,
                HumanCount(updates).c_str(),
                HumanBytes(engine.metrics().bytes).c_str(),
                quality.cut_edges, quality.cut_fraction * 100.0,
                part_seconds);
    rows.push_back({strategy, engine.metrics().total_seconds, updates});

    ReportRow json_row =
        MetricsRow(strategy, "partition strategy", engine.metrics());
    json_row.messages = updates;
    report.Add(json_row);
  }

  std::printf("\nShape checks (paper: METIS 18.3s/7.5M vs stream 30s/40M "
              "=> 1.6x time, 5.3x messages):\n");
  std::printf("  updates ratio ldg/metis  = %6.2fx\n",
              static_cast<double>(rows[1].updates) / rows[0].updates);
  std::printf("  updates ratio hash/metis = %6.2fx\n",
              static_cast<double>(rows[3].updates) / rows[0].updates);
  std::printf("  time    ratio hash/metis = %6.2fx\n",
              rows[3].seconds / rows[0].seconds);
  MaybeWriteJson(flags, report);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace grape

int main(int argc, char** argv) { return grape::bench::Run(argc, argv); }
