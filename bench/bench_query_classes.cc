// Experiment E5 — the Fig. 3(5) / Sec. 3 query-class comparison: every
// registered PIE program (SSSP, CC, Sim, SubIso, Keyword, CF) runs through
// the registry on an appropriate workload, next to the baseline execution
// models where they implement the same query. Expected shape: GRAPE at
// least matches the baselines on every class while shipping far less data,
// and classes like Sim/SubIso/CF — painful to express vertex-centrically —
// run unchanged as plugged-in sequential algorithms.
//
// Flags: --workers --scale,
//        --json <path> (one row per query class + the cross-model table).

#include "apps/register_apps.h"
#include "apps/seq/seq_algorithms.h"
#include "bench/bench_util.h"
#include "core/app_registry.h"
#include "util/flags.h"

namespace grape {
namespace bench {
namespace {

void RunClass(const std::string& name, const FragmentedGraph& fg,
              const QueryArgs& args, Report* report) {
  auto app = AppRegistry::Global().Get(name);
  GRAPE_CHECK(app.ok()) << app.status();
  EngineMetrics metrics;
  WallTimer timer;
  auto result = app->run(fg, args, EngineOptions{}, &metrics);
  GRAPE_CHECK(result.ok()) << result.status();
  const double seconds = timer.ElapsedSeconds();
  std::printf("%-9s %10.3f %12s %8u   %s\n", name.c_str(), seconds,
              HumanBytes(metrics.bytes).c_str(), metrics.supersteps,
              result->c_str());
  ReportRow row = MetricsRow(name, "query class (registry)", metrics);
  row.time_s = seconds;
  report->Add(row);
}

int Run(int argc, char** argv) {
  FlagParser flags;
  GRAPE_CHECK(flags.Parse(argc, argv).ok());
  const auto workers = static_cast<FragmentId>(flags.GetInt("workers", 8));
  const auto scale = static_cast<uint32_t>(flags.GetInt("scale", 13));
  RegisterBuiltinApps();
  Report report("query_classes");

  LabeledGraphOptions lopts;
  lopts.scale = scale;
  lopts.edge_factor = 8;
  lopts.num_vertex_labels = 16;
  lopts.seed = 2024;
  auto labeled = GenerateLabeledGraph(lopts);
  GRAPE_CHECK(labeled.ok());
  FragmentedGraph labeled_fg = Fragmentize(*labeled, "metis", workers);

  BipartiteOptions bopts;
  bopts.num_users = 6000;
  bopts.num_items = 400;
  bopts.ratings_per_user = 25;
  auto ratings = GenerateBipartiteRatings(bopts);
  GRAPE_CHECK(ratings.ok());
  FragmentedGraph ratings_fg = Fragmentize(*ratings, "hash", workers);

  SocialGraphOptions sopts;
  sopts.num_persons = 30000;
  sopts.num_items = 20;
  auto social = GenerateSocialGraph(sopts);
  GRAPE_CHECK(social.ok());
  FragmentedGraph social_fg = Fragmentize(*social, "hash", workers);

  PrintHeader("Query classes through the GRAPE registry (" +
              std::to_string(workers) + " workers)");
  std::printf("%-9s %10s %12s %8s   %s\n", "Class", "Time(s)", "Comm",
              "Steps", "Answer summary");
  RunClass("sssp", labeled_fg, ParseQueryArgs({"source=0"}), &report);
  RunClass("bfs", labeled_fg, ParseQueryArgs({"source=0"}), &report);
  RunClass("cc", labeled_fg, {}, &report);
  RunClass("pagerank", labeled_fg, ParseQueryArgs({"iters=20"}), &report);
  RunClass("sim", labeled_fg,
           ParseQueryArgs({"pattern=path3", "l0=1", "l1=2", "l2=3"}), &report);
  RunClass("subiso", labeled_fg,
           ParseQueryArgs({"pattern=path3", "l0=1", "l1=2", "l2=3",
                           "limit=200000"}), &report);
  RunClass("keyword", labeled_fg,
           ParseQueryArgs({"k0=1", "k1=2", "radius=4"}), &report);
  RunClass("cf", ratings_fg, ParseQueryArgs({"rank=8", "epochs=8"}), &report);
  RunClass("gpar", social_fg, ParseQueryArgs({"item=30000"}), &report);
  RunClass("triangle", labeled_fg, {}, &report);

  // Cross-model comparison on the classes the baselines implement.
  PrintHeader("SSSP across execution models (power-law graph)");
  std::vector<double> expected = SeqDijkstra(*labeled, 0);
  FragmentedGraph hash_fg = Fragmentize(*labeled, "hash", workers);
  std::vector<SystemRow> table;
  table.push_back(RunVcSssp(hash_fg, 0, expected, "Giraph-like (VC)"));
  table.push_back(RunGasSssp(hash_fg, 0, expected, "GraphLab-like (GAS)"));
  table.push_back(RunBlockSssp(hash_fg, 0, expected, "Blogel-like (block)"));
  table.push_back(
      RunGrapeSssp(labeled_fg, 0, expected, EngineOptions{}, "GRAPE"));
  PrintSystemTable(table);
  AddSystemTable(table, &report);
  MaybeWriteJson(flags, report);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace grape

int main(int argc, char** argv) { return grape::bench::Run(argc, argv); }
