// Experiment E1 — reproduces Table 1 of the paper: single-source shortest
// paths over a road network, comparing the four execution models:
//
//   System    Category               Time(s)   Comm.(MB)
//   Giraph    vertex-centric         10126     1.02e5
//   GraphLab  vertex-centric          8586     1.02e5
//   Blogel    block-centric            226     2.8e3
//   GRAPE     auto-parallelization     10.5     0.05
//
// Absolute numbers differ (the paper ran a 24-processor cluster on the
// 24M-vertex US road network; we run an in-process simulation on a
// generated grid road graph), but the *shape* must hold: GRAPE beats
// block-centric beats vertex-centric in time, and GRAPE's communication is
// orders of magnitude below per-vertex messaging.
//
// Flags: --rows --cols (grid size), --workers, --source,
//        --transport inproc|socket|tcp (substrate for the GRAPE rows),
//        --compute local|remote (where PEval/IncEval execute),
//        --rank N --hosts a:p,... (tcp cluster mode; rank>0 = endpoint),
//        --json <path> (machine-readable report, rows in table order).
//
// Besides the four-system table, the bench always appends a GRAPE row per
// transport backend (inproc, socket, tcp) on the same partition, tracking
// what each multi-process substrate (forked endpoints + AF_UNIX frames,
// or TCP-meshed endpoints + the same frames) costs per superstep relative
// to in-memory mailboxes — plus a local-vs-remote compute pair on the
// chosen transport, tracking what moving PEval/IncEval into the endpoint
// processes costs (comm must be identical; only time may move).

#include <memory>
#include <string>

#include "apps/register_apps.h"
#include "apps/seq/seq_algorithms.h"
#include "bench/bench_util.h"
#include "rt/cluster.h"
#include "rt/transport.h"
#include "util/flags.h"

namespace grape {
namespace bench {
namespace {

int Run(int argc, char** argv) {
  FlagParser flags;
  GRAPE_CHECK(flags.Parse(argc, argv).ok());
  const uint32_t rows = static_cast<uint32_t>(flags.GetInt("rows", 170));
  const uint32_t cols = static_cast<uint32_t>(flags.GetInt("cols", 170));
  const FragmentId workers =
      static_cast<FragmentId>(flags.GetInt("workers", 8));
  const VertexId source = static_cast<VertexId>(flags.GetInt("source", 0));
  const std::string transport = flags.GetString("transport", "inproc");
  const std::string compute = flags.GetString("compute", "local");
  GRAPE_CHECK(compute == "local" || compute == "remote")
      << "--compute must be local or remote";

  // Endpoint processes (forked at transport creation) resolve remote
  // apps by name from a registry snapshot taken at fork: populate first.
  RegisterBuiltinWorkerApps();

  auto cluster = ClusterSpec::FromFlags(flags);
  GRAPE_CHECK(cluster.ok()) << cluster.status();
  // Cluster endpoint mode (--rank > 0): serve this rank's place in the
  // tcp mesh for the rank-0 bench process, then exit.
  int endpoint_exit = 0;
  if (RanAsClusterEndpoint(*cluster, transport, &endpoint_exit)) {
    return endpoint_exit;
  }

  // In cluster mode the remote endpoints serve exactly one world and then
  // exit, so only the FIRST world of the chosen substrate (the headline
  // GRAPE row) gets the --hosts roster; every other row — including the
  // same backend's later rows — runs on a local auto-spawn world.
  bool cluster_world_used = cluster->single_host();
  auto make_world = [&](const std::string& backend) {
    auto t = (backend == transport && !cluster_world_used)
                 ? MakeClusterTransport(backend, workers + 1, *cluster)
                 : MakeTransport(backend, workers + 1);
    if (backend == transport) cluster_world_used = true;
    GRAPE_CHECK(t.ok()) << t.status();
    return std::move(t).value();
  };
  auto with_transport = [&compute](Transport* t) {
    EngineOptions options;
    options.transport = t;
    if (compute == "remote") options.remote_app = "sssp";
    return options;
  };

  auto g = GenerateGridRoad(rows, cols, /*seed=*/1701);
  GRAPE_CHECK(g.ok()) << g.status();
  std::vector<double> expected = SeqDijkstra(*g, source);

  PrintHeader("Table 1: graph traversal (SSSP) on a " +
              std::to_string(rows) + "x" + std::to_string(cols) +
              " road network, " + std::to_string(workers) + " workers, " +
              transport + " transport");

  // Each system runs with its native partitioning: vertex-centric systems
  // hash by default, the block-centric system builds Voronoi (GVD) blocks
  // as Blogel does, and GRAPE exercises its graph-level-optimization claim
  // by picking the best registered strategy for road graphs (2-D tiling,
  // METIS-grade on a lattice). GRAPE byte counts include both legs of the
  // coordinator relay.
  FragmentedGraph hash_fg = Fragmentize(*g, "hash", workers);
  FragmentedGraph voronoi_fg = Fragmentize(*g, "voronoi", workers);
  FragmentedGraph grid_fg = Fragmentize(*g, "grid2d", workers);

  std::vector<SystemRow> table;
  table.push_back(
      RunVcSssp(hash_fg, source, expected, "Giraph-like (VC)"));
  table.push_back(
      RunGasSssp(hash_fg, source, expected, "GraphLab-like (GAS)"));
  table.push_back(
      RunBlockSssp(voronoi_fg, source, expected, "Blogel-like (block)"));
  std::unique_ptr<Transport> grape_world = make_world(transport);
  table.push_back(RunGrapeSssp(grid_fg, source, expected,
                               with_transport(grape_world.get()), "GRAPE"));
  // Same engine on the vertex-centric systems' hash partition: the
  // worst-case cut maximizes border traffic, so this row is the one that
  // exercises (and tracks) the flush -> route -> apply message path.
  std::unique_ptr<Transport> hash_world = make_world(transport);
  table.push_back(RunGrapeSssp(hash_fg, source, expected,
                               with_transport(hash_world.get()),
                               "GRAPE (hash)"));
  // The substrate pair: identical engine, partition, and query — only the
  // transport differs, so the row delta is pure substrate cost. The
  // backend already measured for the "GRAPE" row is reused (relabeled)
  // instead of re-run.
  auto pair_row = [&](const std::string& backend) {
    if (backend == transport) {
      SystemRow row = table[3];
      row.system = "GRAPE (" + backend + ")";
      return row;
    }
    std::unique_ptr<Transport> world = make_world(backend);
    return RunGrapeSssp(grid_fg, source, expected,
                        with_transport(world.get()),
                        "GRAPE (" + backend + ")");
  };
  const size_t pair_base = table.size();
  for (const std::string& backend : TransportNames()) {
    table.push_back(pair_row(backend));
  }
  // The compute-placement pair: identical engine, partition, query, and
  // transport — only WHERE PEval/IncEval execute differs (inline in the
  // rank-0 process vs inside each rank's worker host), so the row delta
  // is pure placement cost. Comm must be identical: the worker protocol's
  // control frames are invisible to the counters by design.
  auto compute_row = [&](const std::string& mode) {
    std::unique_ptr<Transport> world = make_world(transport);
    EngineOptions options;
    options.transport = world.get();
    if (mode == "remote") options.remote_app = "sssp";
    return RunGrapeSssp(grid_fg, source, expected, options,
                        "GRAPE (" + mode + " compute)");
  };
  const size_t compute_base = table.size();
  table.push_back(compute_row("local"));
  table.push_back(compute_row("remote"));
  PrintSystemTable(table);

  const SystemRow& grape = table[3];
  std::printf("\nShape checks (paper: GRAPE >> Blogel >> Giraph/GraphLab):\n");
  std::printf("  time  ratio VC/GRAPE     = %8.1fx   (paper: ~964x)\n",
              table[0].seconds / grape.seconds);
  std::printf("  time  ratio GAS/GRAPE    = %8.1fx   (paper: ~818x)\n",
              table[1].seconds / grape.seconds);
  std::printf("  time  ratio Block/GRAPE  = %8.1fx   (paper: ~21.5x)\n",
              table[2].seconds / grape.seconds);
  std::printf("  comm  ratio VC/GRAPE     = %8.1fx   (paper: ~2e6x)\n",
              static_cast<double>(table[0].bytes) / grape.bytes);
  std::printf("  comm  ratio Block/GRAPE  = %8.1fx   (paper: ~5.6e4x)\n",
              static_cast<double>(table[2].bytes) / grape.bytes);

  const SystemRow& inproc_row = table[pair_base];
  std::printf("\nTransport rows (same engine/partition/query):\n");
  for (size_t i = pair_base + 1; i < compute_base; ++i) {
    const SystemRow& row = table[i];
    std::printf(
        "  time  ratio %s/inproc = %7.2fx  comm delta = %lld B (must be 0)\n",
        TransportNames()[i - pair_base].c_str(),
        row.seconds / inproc_row.seconds,
        static_cast<long long>(row.bytes) -
            static_cast<long long>(inproc_row.bytes));
  }

  const SystemRow& local_row = table[compute_base];
  const SystemRow& remote_row = table[compute_base + 1];
  std::printf("\nCompute rows (%s transport, same partition/query):\n",
              transport.c_str());
  std::printf(
      "  time  ratio remote/local = %7.2fx  comm delta = %lld B (must be 0)"
      "  rounds delta = %d (must be 0)\n",
      remote_row.seconds / local_row.seconds,
      static_cast<long long>(remote_row.bytes) -
          static_cast<long long>(local_row.bytes),
      static_cast<int>(remote_row.supersteps) -
          static_cast<int>(local_row.supersteps));

  Report report("table1_sssp");
  AddSystemTable(table, &report);
  MaybeWriteJson(flags, report);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace grape

int main(int argc, char** argv) { return grape::bench::Run(argc, argv); }
