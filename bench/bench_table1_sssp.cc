// Experiment E1 — reproduces Table 1 of the paper: single-source shortest
// paths over a road network, comparing the four execution models:
//
//   System    Category               Time(s)   Comm.(MB)
//   Giraph    vertex-centric         10126     1.02e5
//   GraphLab  vertex-centric          8586     1.02e5
//   Blogel    block-centric            226     2.8e3
//   GRAPE     auto-parallelization     10.5     0.05
//
// Absolute numbers differ (the paper ran a 24-processor cluster on the
// 24M-vertex US road network; we run an in-process simulation on a
// generated grid road graph), but the *shape* must hold: GRAPE beats
// block-centric beats vertex-centric in time, and GRAPE's communication is
// orders of magnitude below per-vertex messaging.
//
// Flags: --rows --cols (grid size), --workers, --source,
//        --transport inproc|socket|tcp (substrate for the GRAPE rows),
//        --compute local|remote (where PEval/IncEval execute),
//        --compute-threads N (frontier-parallel PEval/IncEval inside each
//          fragment; answers and comm counters are bit-identical to N=1),
//        --load coordinator|distributed (how fragments come to exist;
//          distributed requires --compute=remote),
//        --full (paper-shaped sizes instead of smoke defaults),
//        --rank N --hosts a:p,... (tcp cluster mode; rank>0 = endpoint),
//        --json <path> (machine-readable report, rows in table order).
//
// Besides the four-system table, the bench always appends a GRAPE row per
// transport backend (inproc, socket, tcp) on the same partition, a
// local-vs-remote compute pair on the chosen transport (comm must be
// identical; only time may move), and three load-phase rows measuring
// time-to-fragments-resident per (load mode, placement):
//
//   GRAPE load (coordinator/local)   partition + build at rank 0
//   GRAPE load (coordinator/remote)  ... + serialize + ship to workers
//   GRAPE load (distributed/remote)  per-rank shard read + exchange +
//                                    in-place assembly (rank 0 never
//                                    materializes the graph)
//
// With --load=distributed the headline "GRAPE" and "GRAPE (hash)" rows run
// on distributed-built fragments; CI gates that their comm counters,
// rounds, and correctness match a --load=coordinator run exactly.

#include <unistd.h>

#include <cstdio>
#include <memory>
#include <optional>
#include <string>

#include "apps/register_apps.h"
#include "apps/seq/seq_algorithms.h"
#include "bench/bench_util.h"
#include "graph/io.h"
#include "rt/cluster.h"
#include "rt/distributed_load.h"
#include "rt/transport.h"
#include "util/flags.h"

namespace grape {
namespace bench {
namespace {

int Run(int argc, char** argv) {
  FlagParser flags;
  GRAPE_CHECK(flags.Parse(argc, argv).ok());
  // --full is profile scaffolding (ROADMAP housekeeping): paper-shaped
  // sizes for overnight runs; smoke defaults keep CI in seconds. Explicit
  // --rows/--cols always win.
  const bool full = flags.GetBool("full", false);
  const uint32_t rows =
      static_cast<uint32_t>(flags.GetInt("rows", full ? 512 : 170));
  const uint32_t cols =
      static_cast<uint32_t>(flags.GetInt("cols", full ? 512 : 170));
  const FragmentId workers =
      static_cast<FragmentId>(flags.GetInt("workers", 8));
  const VertexId source = static_cast<VertexId>(flags.GetInt("source", 0));
  const std::string transport = flags.GetString("transport", "inproc");
  const std::string compute = flags.GetString("compute", "local");
  const auto compute_threads =
      static_cast<uint32_t>(flags.GetInt("compute-threads", 0));
  GRAPE_CHECK(compute == "local" || compute == "remote")
      << "--compute must be local or remote";
  const std::string load = flags.GetString("load", "coordinator");
  GRAPE_CHECK(load == "coordinator" || load == "distributed")
      << "--load must be coordinator or distributed";
  GRAPE_CHECK(load == "coordinator" || compute == "remote")
      << "--load=distributed leaves rank 0 without fragments; pass "
         "--compute=remote";

  // Endpoint processes (forked at transport creation) resolve remote
  // apps by name from a registry snapshot taken at fork: populate first.
  RegisterBuiltinWorkerApps();

  auto cluster = ClusterSpec::FromFlags(flags);
  GRAPE_CHECK(cluster.ok()) << cluster.status();
  // Cluster endpoint mode (--rank > 0): serve this rank's place in the
  // tcp mesh for the rank-0 bench process, then exit.
  int endpoint_exit = 0;
  if (RanAsClusterEndpoint(*cluster, transport, &endpoint_exit)) {
    return endpoint_exit;
  }

  // In cluster mode the remote endpoints serve exactly one world and then
  // exit, so only the FIRST world of the chosen substrate (the headline
  // GRAPE row) gets the --hosts roster; every other row — including the
  // same backend's later rows — runs on a local auto-spawn world.
  bool cluster_world_used = cluster->single_host();
  auto make_world = [&](const std::string& backend) {
    auto t = (backend == transport && !cluster_world_used)
                 ? MakeClusterTransport(backend, workers + 1, *cluster)
                 : MakeTransport(backend, workers + 1);
    if (backend == transport) cluster_world_used = true;
    GRAPE_CHECK(t.ok()) << t.status();
    return std::move(t).value();
  };
  auto with_transport = [&compute, compute_threads](Transport* t) {
    EngineOptions options;
    options.transport = t;
    options.compute_threads = compute_threads;
    if (compute == "remote") options.remote_app = "sssp";
    return options;
  };

  auto g = GenerateGridRoad(rows, cols, /*seed=*/1701);
  GRAPE_CHECK(g.ok()) << g.status();
  std::vector<double> expected = SeqDijkstra(*g, source);

  PrintHeader("Table 1: graph traversal (SSSP) on a " +
              std::to_string(rows) + "x" + std::to_string(cols) +
              " road network, " + std::to_string(workers) + " workers, " +
              transport + " transport");

  // Each system runs with its native partitioning: vertex-centric systems
  // hash by default, the block-centric system builds Voronoi (GVD) blocks
  // as Blogel does, and GRAPE exercises its graph-level-optimization claim
  // by picking the best registered strategy for road graphs (2-D tiling,
  // METIS-grade on a lattice). GRAPE byte counts include both legs of the
  // coordinator relay.
  FragmentedGraph hash_fg = Fragmentize(*g, "hash", workers);
  FragmentedGraph voronoi_fg = Fragmentize(*g, "voronoi", workers);
  // The headline partition is built by hand so (a) the coordinator-side
  // build is timed (the "GRAPE load (coordinator/*)" rows) and (b) the
  // assignment is available for --load=distributed to ship.
  WallTimer grid_build_timer;
  auto grid_partitioner = MakePartitioner("grid2d");
  GRAPE_CHECK(grid_partitioner.ok()) << grid_partitioner.status();
  auto grid_assignment = (*grid_partitioner)->Partition(*g, workers);
  GRAPE_CHECK(grid_assignment.ok()) << grid_assignment.status();
  auto grid_built = FragmentBuilder::Build(*g, *grid_assignment, workers);
  GRAPE_CHECK(grid_built.ok()) << grid_built.status();
  FragmentedGraph grid_fg = std::move(grid_built).value();
  const double coordinator_build_seconds = grid_build_timer.ElapsedSeconds();

  // Edge-list file for the distributed load path (the load rows always
  // measure it; the headline rows run from it under --load=distributed).
  const std::string shard_path =
      "/tmp/grape_bench_table1_" + std::to_string(getpid()) + ".txt";
  GRAPE_CHECK(SaveEdgeListFile(*g, shard_path).ok());
  EdgeListFormat saved_format;
  saved_format.directed = true;
  saved_format.has_weight = true;
  saved_format.has_label = true;
  auto distributed_grid_options = [&] {
    DistributedLoadOptions dopt;
    dopt.path = shard_path;
    dopt.format = saved_format;
    dopt.partitioner = "explicit";
    dopt.assignment = *grid_assignment;
    return dopt;
  };

  std::vector<SystemRow> table;
  table.push_back(
      RunVcSssp(hash_fg, source, expected, "Giraph-like (VC)"));
  table.push_back(
      RunGasSssp(hash_fg, source, expected, "GraphLab-like (GAS)"));
  table.push_back(
      RunBlockSssp(voronoi_fg, source, expected, "Blogel-like (block)"));
  std::unique_ptr<Transport> grape_world = make_world(transport);
  double distributed_load_seconds = 0;
  if (load == "distributed") {
    WallTimer dl_timer;
    auto meta = DistributedLoad(grape_world.get(), distributed_grid_options());
    GRAPE_CHECK(meta.ok()) << meta.status();
    distributed_load_seconds = dl_timer.ElapsedSeconds();
    table.push_back(RunGrapeSsspDistributed(
        *meta, source, expected, with_transport(grape_world.get()), "GRAPE"));
  } else {
    table.push_back(RunGrapeSssp(grid_fg, source, expected,
                                 with_transport(grape_world.get()), "GRAPE"));
  }
  // Same engine on the vertex-centric systems' hash partition: the
  // worst-case cut maximizes border traffic, so this row is the one that
  // exercises (and tracks) the flush -> route -> apply message path.
  // Under --load=distributed the workers rebuild it in place from their
  // shards with the pure-arithmetic hash policy (no assignment shipped).
  std::unique_ptr<Transport> hash_world = make_world(transport);
  if (load == "distributed") {
    DistributedLoadOptions hopt;
    hopt.path = shard_path;
    hopt.format = saved_format;
    hopt.partitioner = "hash";
    auto hmeta = DistributedLoad(hash_world.get(), hopt);
    GRAPE_CHECK(hmeta.ok()) << hmeta.status();
    table.push_back(RunGrapeSsspDistributed(*hmeta, source, expected,
                                            with_transport(hash_world.get()),
                                            "GRAPE (hash)"));
  } else {
    table.push_back(RunGrapeSssp(hash_fg, source, expected,
                                 with_transport(hash_world.get()),
                                 "GRAPE (hash)"));
  }
  // The substrate pair: identical engine, partition, and query — only the
  // transport differs, so the row delta is pure substrate cost. The
  // backend already measured for the "GRAPE" row is reused (relabeled)
  // instead of re-run.
  auto pair_row = [&](const std::string& backend) {
    if (backend == transport) {
      SystemRow row = table[3];
      row.system = "GRAPE (" + backend + ")";
      return row;
    }
    std::unique_ptr<Transport> world = make_world(backend);
    return RunGrapeSssp(grid_fg, source, expected,
                        with_transport(world.get()),
                        "GRAPE (" + backend + ")");
  };
  const size_t pair_base = table.size();
  for (const std::string& backend : TransportNames()) {
    table.push_back(pair_row(backend));
  }
  // The compute-placement pair: identical engine, partition, query, and
  // transport — only WHERE PEval/IncEval execute differs (inline in the
  // rank-0 process vs inside each rank's worker host), so the row delta
  // is pure placement cost. Comm must be identical: the worker protocol's
  // control frames are invisible to the counters by design. The remote
  // run's metrics also yield the fragment-ship half of the
  // coordinator/remote load row.
  EngineMetrics remote_metrics;
  auto compute_row = [&](const std::string& mode, EngineMetrics* metrics) {
    std::unique_ptr<Transport> world = make_world(transport);
    EngineOptions options;
    options.transport = world.get();
    options.compute_threads = compute_threads;
    if (mode == "remote") options.remote_app = "sssp";
    return RunGrapeSssp(grid_fg, source, expected, options,
                        "GRAPE (" + mode + " compute)", metrics);
  };
  const size_t compute_base = table.size();
  table.push_back(compute_row("local", nullptr));
  table.push_back(compute_row("remote", &remote_metrics));
  // The fault-tolerance pair: the remote-compute row just above is the
  // checkpoint-off baseline; this row re-runs it with a checkpoint every
  // superstep (the worst-case cadence). The delta is pure checkpoint
  // cost — comm counters must not move, because checkpoint frames are
  // control traffic and invisible to CommStats by design. The time ratio
  // is reported warn-only: it tracks serialization throughput, which is
  // machine-dependent, so it must never gate CI.
  EngineMetrics ckpt_metrics;
  const size_t ckpt_base = table.size();
  {
    std::unique_ptr<Transport> world = make_world(transport);
    EngineOptions options;
    options.transport = world.get();
    options.remote_app = "sssp";
    options.checkpoint.every_k = 1;
    table.push_back(RunGrapeSssp(grid_fg, source, expected, options,
                                 "GRAPE (ckpt every 1)", &ckpt_metrics));
  }
  PrintSystemTable(table);

  // Load-phase rows: time-to-fragments-resident per (load mode,
  // placement). The distributed row is measured on a dedicated world when
  // the headline rows did not already run it.
  if (load != "distributed") {
    std::unique_ptr<Transport> world = make_world(transport);
    WallTimer dl_timer;
    auto meta = DistributedLoad(world.get(), distributed_grid_options());
    GRAPE_CHECK(meta.ok()) << meta.status();
    distributed_load_seconds = dl_timer.ElapsedSeconds();
  }
  struct LoadRow {
    std::string mode;
    double seconds;
  };
  const LoadRow load_rows[] = {
      {"coordinator/local", coordinator_build_seconds},
      {"coordinator/remote",
       coordinator_build_seconds + remote_metrics.load_seconds},
      {"distributed/remote", distributed_load_seconds},
  };
  std::printf("\nLoad phase (time to fragments resident, %s transport):\n",
              transport.c_str());
  for (const LoadRow& lr : load_rows) {
    std::printf("  %-22s %8.3fs\n", lr.mode.c_str(), lr.seconds);
  }
  std::remove(shard_path.c_str());

  const SystemRow& grape = table[3];
  std::printf("\nShape checks (paper: GRAPE >> Blogel >> Giraph/GraphLab):\n");
  std::printf("  time  ratio VC/GRAPE     = %8.1fx   (paper: ~964x)\n",
              table[0].seconds / grape.seconds);
  std::printf("  time  ratio GAS/GRAPE    = %8.1fx   (paper: ~818x)\n",
              table[1].seconds / grape.seconds);
  std::printf("  time  ratio Block/GRAPE  = %8.1fx   (paper: ~21.5x)\n",
              table[2].seconds / grape.seconds);
  std::printf("  comm  ratio VC/GRAPE     = %8.1fx   (paper: ~2e6x)\n",
              static_cast<double>(table[0].bytes) / grape.bytes);
  std::printf("  comm  ratio Block/GRAPE  = %8.1fx   (paper: ~5.6e4x)\n",
              static_cast<double>(table[2].bytes) / grape.bytes);

  const SystemRow& inproc_row = table[pair_base];
  std::printf("\nTransport rows (same engine/partition/query):\n");
  for (size_t i = pair_base + 1; i < compute_base; ++i) {
    const SystemRow& row = table[i];
    std::printf(
        "  time  ratio %s/inproc = %7.2fx  comm delta = %lld B (must be 0)\n",
        TransportNames()[i - pair_base].c_str(),
        row.seconds / inproc_row.seconds,
        static_cast<long long>(row.bytes) -
            static_cast<long long>(inproc_row.bytes));
  }

  const SystemRow& local_row = table[compute_base];
  const SystemRow& remote_row = table[compute_base + 1];
  std::printf("\nCompute rows (%s transport, same partition/query):\n",
              transport.c_str());
  std::printf(
      "  time  ratio remote/local = %7.2fx  comm delta = %lld B (must be 0)"
      "  rounds delta = %d (must be 0)\n",
      remote_row.seconds / local_row.seconds,
      static_cast<long long>(remote_row.bytes) -
          static_cast<long long>(local_row.bytes),
      static_cast<int>(remote_row.supersteps) -
          static_cast<int>(local_row.supersteps));

  const SystemRow& ckpt_row = table[ckpt_base];
  std::printf("\nCheckpoint row (%s transport, remote compute, every "
              "superstep):\n",
              transport.c_str());
  std::printf(
      "  time  ratio ckpt/remote = %7.2fx  comm delta = %lld B (must be 0)"
      "  ckpts=%u ckpt_bytes=%llu ckpt=%.3fs\n",
      ckpt_row.seconds / remote_row.seconds,
      static_cast<long long>(ckpt_row.bytes) -
          static_cast<long long>(remote_row.bytes),
      ckpt_metrics.checkpoints,
      static_cast<unsigned long long>(ckpt_metrics.checkpoint_bytes),
      ckpt_metrics.checkpoint_seconds);
  if (ckpt_row.seconds > 3.0 * remote_row.seconds) {
    std::printf("  WARN: per-superstep checkpointing cost %.1fx the "
                "checkpoint-off run (warn-only; serialization throughput "
                "is machine-dependent)\n",
                ckpt_row.seconds / remote_row.seconds);
  }

  Report report("table1_sssp");
  AddSystemTable(table, &report);
  for (const LoadRow& lr : load_rows) {
    ReportRow row;
    row.system = "GRAPE load (" + lr.mode + ")";
    row.category = "load-phase";
    row.time_s = lr.seconds;
    row.correct = true;
    report.Add(row);
  }
  MaybeWriteJson(flags, report);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace grape

int main(int argc, char** argv) { return grape::bench::Run(argc, argv); }
