// Experiment E4 — the Fig. 3(4) analytics panel: scalability of GRAPE as
// the number of workers grows, with the fine-grained PEval vs IncEval time
// breakdown the demo visualizes. Expected shape: compute time falls as
// workers are added (until fragments get small), communication rises
// gently, and PEval dominates IncEval for monotonic queries.
//
// Flags: --scale (RMAT), --rows/--cols (road), --max_workers,
//        --json <path> (one row per sweep point).

#include "apps/cc.h"
#include "apps/pagerank.h"
#include "apps/seq/seq_algorithms.h"
#include "bench/bench_util.h"
#include "util/flags.h"

namespace grape {
namespace bench {
namespace {

/// Highest out-degree vertex: a source whose query exercises the graph.
VertexId BusiestVertex(const Graph& g) {
  VertexId best = 0;
  for (VertexId v = 1; v < g.num_vertices(); ++v) {
    if (g.OutDegree(v) > g.OutDegree(best)) best = v;
  }
  return best;
}

template <typename App, typename Query>
void Sweep(const Graph& g, const std::string& title, const Query& query,
           FragmentId max_workers, const std::string& strategy,
           const std::string& label, Report* report) {
  PrintHeader(title);
  std::printf("%8s %10s %10s %10s %10s %12s %12s %8s\n", "Workers",
              "Time(s)", "PEval(s)", "IncEval(s)", "Coord(s)", "Comm",
              "ParamUpd", "Steps");
  double t1 = 0;
  double peval1 = 0;
  for (FragmentId n = 1; n <= max_workers; n *= 2) {
    FragmentedGraph fg = Fragmentize(g, strategy, n);
    GrapeEngine<App> engine(fg, App{});
    auto out = engine.Run(query);
    GRAPE_CHECK(out.ok()) << out.status();
    const EngineMetrics& m = engine.metrics();
    uint64_t updates = 0;
    for (const RoundMetrics& r : m.rounds) updates += r.updated_params;
    if (n == 1) {
      t1 = m.total_seconds;
      peval1 = m.peval_seconds;
    }
    std::printf("%8u %10.3f %10.3f %10.3f %10.3f %12s %12s %8u   "
                "(speedup total %4.2fx, peval %4.2fx)\n",
                n, m.total_seconds, m.peval_seconds, m.inceval_seconds,
                m.coordinator_seconds, HumanBytes(m.bytes).c_str(),
                HumanCount(updates).c_str(), m.supersteps,
                t1 / m.total_seconds,
                peval1 / std::max(1e-9, m.peval_seconds));

    ReportRow row = MetricsRow(label + " workers=" + std::to_string(n),
                               "scalability sweep (" + strategy + ")", m);
    row.messages = updates;
    report->Add(row);
  }
}

int Run(int argc, char** argv) {
  FlagParser flags;
  GRAPE_CHECK(flags.Parse(argc, argv).ok());
  CommunityGraphOptions copts;
  copts.num_vertices = 1u
                       << static_cast<uint32_t>(flags.GetInt("scale", 16));
  copts.avg_degree = 16;
  copts.num_communities = 128;
  copts.seed = 34;
  const auto rows = static_cast<uint32_t>(flags.GetInt("rows", 500));
  const auto cols = static_cast<uint32_t>(flags.GetInt("cols", 500));
  const auto max_workers =
      static_cast<FragmentId>(flags.GetInt("max_workers", 16));

  auto social = GenerateCommunityGraph(copts);
  GRAPE_CHECK(social.ok());
  auto road = GenerateGridRoad(rows, cols, 35);
  GRAPE_CHECK(road.ok());
  const VertexId social_src = BusiestVertex(*social);

  Report report("scalability");
  Sweep<SsspApp>(*road,
                 "Fig 3(4)a: SSSP scalability on road network (grid2d)",
                 SsspQuery{0}, max_workers, "grid2d", "SSSP/road", &report);
  Sweep<SsspApp>(*social,
                 "Fig 3(4)b: SSSP scalability on social graph (metis)",
                 SsspQuery{social_src}, max_workers, "metis", "SSSP/social",
                 &report);
  Sweep<CcApp>(*social,
               "Fig 3(4)c: CC scalability on social graph (hash)", CcQuery{},
               max_workers, "hash", "CC/social", &report);
  PageRankQuery pr;
  pr.max_iterations = 20;
  pr.epsilon = 0.0;
  Sweep<PageRankApp>(*social,
                     "Fig 3(4)d: PageRank (20 iters) on social graph (metis)",
                     pr, max_workers, "metis", "PageRank/social", &report);
  MaybeWriteJson(flags, report);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace grape

int main(int argc, char** argv) { return grape::bench::Run(argc, argv); }
