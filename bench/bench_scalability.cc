// Experiment E4 — the Fig. 3(4) analytics panel: scalability of GRAPE as
// the number of workers grows, with the fine-grained PEval vs IncEval time
// breakdown the demo visualizes. Expected shape: compute time falls as
// workers are added (until fragments get small), communication rises
// gently, and PEval dominates IncEval for monotonic queries.
//
// A second panel sweeps intra-fragment compute threads on a single
// fragment (EngineOptions::compute_threads): the frontier-parallel
// PEval/IncEval variants must produce bit-identical answers and counters
// at every thread count, so the only column allowed to move is time.
//
// Flags: --scale (RMAT), --rows/--cols (road), --max_workers,
//        --max_threads (threads-sweep ceiling, default 8),
//        --full (paper-shaped sizes instead of smoke defaults),
//        --json <path> (one row per sweep point).

#include <thread>

#include "apps/cc.h"
#include "apps/pagerank.h"
#include "apps/seq/seq_algorithms.h"
#include "bench/bench_util.h"
#include "util/flags.h"

namespace grape {
namespace bench {
namespace {

/// Highest out-degree vertex: a source whose query exercises the graph.
VertexId BusiestVertex(const Graph& g) {
  VertexId best = 0;
  for (VertexId v = 1; v < g.num_vertices(); ++v) {
    if (g.OutDegree(v) > g.OutDegree(best)) best = v;
  }
  return best;
}

/// Worker counts to benchmark: powers of two up to max_workers, plus
/// max_workers itself when it is not a power of two (the old sweep
/// silently stopped at the last power of two below it, so e.g.
/// --max_workers=12 never benchmarked 12 workers).
std::vector<FragmentId> SweepPoints(FragmentId max_workers) {
  std::vector<FragmentId> points;
  for (FragmentId n = 1; n <= max_workers; n *= 2) points.push_back(n);
  if (points.empty() || points.back() != max_workers) {
    std::printf("note: --max_workers=%u is not a power of two; sweeping "
                "powers of two below it, then clamping the final point to "
                "%u (the skipped power-of-two step would overshoot)\n",
                max_workers, max_workers);
    points.push_back(max_workers);
  }
  return points;
}

template <typename App, typename Query>
void Sweep(const Graph& g, const std::string& title, const Query& query,
           FragmentId max_workers, const std::string& strategy,
           const std::string& label, Report* report) {
  PrintHeader(title);
  std::printf("%8s %10s %10s %10s %10s %12s %12s %8s\n", "Workers",
              "Time(s)", "PEval(s)", "IncEval(s)", "Coord(s)", "Comm",
              "ParamUpd", "Steps");
  double t1 = 0;
  double peval1 = 0;
  for (FragmentId n : SweepPoints(max_workers)) {
    FragmentedGraph fg = Fragmentize(g, strategy, n);
    GrapeEngine<App> engine(fg, App{});
    auto out = engine.Run(query);
    GRAPE_CHECK(out.ok()) << out.status();
    const EngineMetrics& m = engine.metrics();
    uint64_t updates = 0;
    for (const RoundMetrics& r : m.rounds) updates += r.updated_params;
    if (n == 1) {
      t1 = m.total_seconds;
      peval1 = m.peval_seconds;
    }
    std::printf("%8u %10.3f %10.3f %10.3f %10.3f %12s %12s %8u   "
                "(speedup total %4.2fx, peval %4.2fx)\n",
                n, m.total_seconds, m.peval_seconds, m.inceval_seconds,
                m.coordinator_seconds, HumanBytes(m.bytes).c_str(),
                HumanCount(updates).c_str(), m.supersteps,
                t1 / m.total_seconds,
                peval1 / std::max(1e-9, m.peval_seconds));

    ReportRow row = MetricsRow(label + " workers=" + std::to_string(n),
                               "scalability sweep (" + strategy + ")", m);
    row.messages = updates;
    report->Add(row);
  }
}

/// Intra-fragment parallelism panel: one fragment, compute_threads swept
/// over {1, 2, 4, ..., max_threads}. The frontier-parallel variants are
/// bit-identical to the sequential path, so comm/updates/steps must not
/// move between rows — only time may.
void ThreadsSweep(const Graph& g, FragmentId max_threads, Report* report) {
  PrintHeader("Intra-fragment frontier parallelism: SSSP on social graph, "
              "1 fragment, compute-threads sweep");
  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("hardware threads available: %u\n", hw);
  std::printf("%8s %10s %10s %10s %12s %12s %8s %10s\n", "Threads",
              "Time(s)", "PEval(s)", "IncEval(s)", "Comm", "ParamUpd",
              "Steps", "Speedup");
  const VertexId src = BusiestVertex(g);
  FragmentedGraph fg = Fragmentize(g, "hash", 1);
  double t1 = 0;
  uint64_t bytes1 = 0;
  uint32_t steps1 = 0;
  for (FragmentId t = 1; t <= max_threads; t *= 2) {
    EngineOptions options;
    options.compute_threads = t;
    GrapeEngine<SsspApp> engine(fg, SsspApp{}, options);
    auto out = engine.Run(SsspQuery{src});
    GRAPE_CHECK(out.ok()) << out.status();
    const EngineMetrics& m = engine.metrics();
    uint64_t updates = 0;
    for (const RoundMetrics& r : m.rounds) updates += r.updated_params;
    if (t == 1) {
      t1 = m.total_seconds;
      bytes1 = m.bytes;
      steps1 = m.supersteps;
    }
    GRAPE_CHECK(m.bytes == bytes1 && m.supersteps == steps1)
        << "threads=" << t << " changed comm/steps: parallel compute must "
        << "be bit-identical to sequential";
    std::printf("%8u %10.3f %10.3f %10.3f %12s %12s %8u %9.2fx\n", t,
                m.total_seconds, m.peval_seconds, m.inceval_seconds,
                HumanBytes(m.bytes).c_str(), HumanCount(updates).c_str(),
                m.supersteps, t1 / std::max(1e-9, m.total_seconds));

    ReportRow row = MetricsRow("SSSP/social threads=" + std::to_string(t),
                               "compute-threads sweep (1 fragment)", m);
    row.messages = updates;
    report->Add(row);
  }
  if (hw <= 1) {
    std::printf("note: this machine exposes %u hardware thread(s), so the "
                "sweep measures scheduling overhead, not speedup; run with "
                "--full on a multi-core machine to see scaling\n", hw);
  } else {
    std::printf("note: smoke-scale graphs may be too small to amortize "
                "chunk scheduling; pass --full (or a larger --scale) for a "
                "speedup-representative sweep\n");
  }
}

int Run(int argc, char** argv) {
  FlagParser flags;
  GRAPE_CHECK(flags.Parse(argc, argv).ok());
  // --full is profile scaffolding: paper-shaped sizes for overnight runs
  // on real hardware; smoke defaults keep CI in seconds. Explicit size
  // flags always win.
  const bool full = flags.GetBool("full", false);
  CommunityGraphOptions copts;
  copts.num_vertices =
      1u << static_cast<uint32_t>(flags.GetInt("scale", full ? 20 : 16));
  copts.avg_degree = 16;
  copts.num_communities = 128;
  copts.seed = 34;
  const auto rows =
      static_cast<uint32_t>(flags.GetInt("rows", full ? 1500 : 500));
  const auto cols =
      static_cast<uint32_t>(flags.GetInt("cols", full ? 1500 : 500));
  const auto max_workers =
      static_cast<FragmentId>(flags.GetInt("max_workers", 16));
  const auto max_threads =
      static_cast<FragmentId>(flags.GetInt("max_threads", 8));

  auto social = GenerateCommunityGraph(copts);
  GRAPE_CHECK(social.ok());
  auto road = GenerateGridRoad(rows, cols, 35);
  GRAPE_CHECK(road.ok());
  const VertexId social_src = BusiestVertex(*social);

  Report report("scalability");
  Sweep<SsspApp>(*road,
                 "Fig 3(4)a: SSSP scalability on road network (grid2d)",
                 SsspQuery{0}, max_workers, "grid2d", "SSSP/road", &report);
  Sweep<SsspApp>(*social,
                 "Fig 3(4)b: SSSP scalability on social graph (metis)",
                 SsspQuery{social_src}, max_workers, "metis", "SSSP/social",
                 &report);
  Sweep<CcApp>(*social,
               "Fig 3(4)c: CC scalability on social graph (hash)", CcQuery{},
               max_workers, "hash", "CC/social", &report);
  PageRankQuery pr;
  pr.max_iterations = 20;
  pr.epsilon = 0.0;
  Sweep<PageRankApp>(*social,
                     "Fig 3(4)d: PageRank (20 iters) on social graph (metis)",
                     pr, max_workers, "metis", "PageRank/social", &report);
  ThreadsSweep(*social, max_threads, &report);
  MaybeWriteJson(flags, report);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace grape

int main(int argc, char** argv) { return grape::bench::Run(argc, argv); }
